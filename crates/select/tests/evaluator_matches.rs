//! Property: the incremental evaluator agrees **exactly** with full
//! re-evaluation — time, total cost, and every breakdown component —
//! over random problems and random flip sequences.
//!
//! This is the contract every solver now leans on: greedy, the knapsack
//! repair, branch-and-bound and the exhaustive/Pareto sweeps all probe
//! through [`IncrementalEvaluator`], so a single bit of drift here would
//! silently change solver outcomes.

use mv_select::{fixtures, IncrementalEvaluator, SelectionSet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary flip/unflip walks leave the evaluator bit-identical to
    /// `SelectionProblem::evaluate` at every step.
    #[test]
    fn random_flip_walks_match_full_evaluation(
        seed in 0u64..10_000,
        n_queries in 1usize..6,
        n_candidates in 1usize..12,
        flips in proptest::collection::vec(0usize..12, 1..40),
    ) {
        let problem = fixtures::random_problem(seed, n_queries, n_candidates);
        let mut ev = IncrementalEvaluator::new(&problem);
        let mut sel = SelectionSet::empty(problem.len());
        for (step, &raw) in flips.iter().enumerate() {
            let k = raw % problem.len();
            ev.toggle(k);
            sel.set(k, !sel.contains(k));

            let incremental = ev.snapshot();
            let full = problem.evaluate(&sel);
            prop_assert_eq!(&incremental.selection, &full.selection,
                "selection diverged at step {}", step);
            prop_assert_eq!(incremental.time, full.time,
                "time diverged at step {}", step);
            prop_assert_eq!(&incremental.breakdown, &full.breakdown,
                "breakdown diverged at step {}", step);
            // cost() is derived from the breakdown, but assert anyway —
            // it is the value the scenario orderings consume.
            prop_assert_eq!(incremental.cost(), full.cost(),
                "cost diverged at step {}", step);
        }
    }

    /// Positioning an evaluator at an arbitrary selection (the parallel
    /// sweeps' chunk starts do this) matches evaluating that selection.
    #[test]
    fn with_selection_matches_full_evaluation(
        seed in 0u64..10_000,
        n_queries in 1usize..6,
        n_candidates in 1usize..12,
        mask in 0u64..(1 << 12),
    ) {
        let problem = fixtures::random_problem(seed, n_queries, n_candidates);
        let mask = mask & ((1u64 << problem.len()) - 1);
        let sel = SelectionSet::from_mask(mask, problem.len());
        let mut ev = IncrementalEvaluator::with_selection(&problem, &sel);
        prop_assert_eq!(ev.snapshot(), problem.evaluate(&sel));
    }

    /// Dynamic candidate churn: random interleavings of
    /// `add_candidate` / `remove_candidate` / selection flips /
    /// **placement flips** agree **bit-for-bit** with rebuilding the
    /// evaluator from the equivalent static problem after every single
    /// operation. The mirror applies the same ops to a plain candidate
    /// vector (`Vec::swap_remove` ↔ the evaluator's swap-remove index
    /// semantics) and re-evaluates from scratch.
    ///
    /// A placement flip is what the mixed-fleet solver's `Place` move
    /// does: re-derive the view's effective charge for the other pool
    /// from its pristine pool entry (spot here: half-rate hours plus an
    /// interruption premium) and splice it with `update_charge` — the
    /// O(1) same-answer-profile path, selected or not.
    ///
    /// 128 cases × up to 30 ops ⇒ well over the 100 random
    /// interleavings the acceptance bar asks for.
    #[test]
    fn dynamic_interleavings_match_rebuilt_static_problem(
        seed in 0u64..10_000,
        n_queries in 1usize..6,
        mask in 0u64..(1 << 10),
        ops in proptest::collection::vec((0u8..4, 0usize..64), 1..30),
    ) {
        use mv_cost::{InterruptionRisk, Placement, PoolCharge, ViewCharge};

        let pool_problem = fixtures::random_problem(seed, n_queries, 10);
        let model = pool_problem.model().clone();
        let pool = pool_problem.candidates().to_vec();

        // Start from a *borrowed* evaluator at a random position, so the
        // first dynamic edit also exercises the copy-on-write promotion.
        let start = SelectionSet::from_mask(mask & ((1 << 10) - 1), pool.len());
        let mut ev = IncrementalEvaluator::with_selection(&pool_problem, &start);

        // The independent mirror: same candidate vector + bool selection,
        // rebuilt into a fresh problem after every op. `pristine` tracks
        // each slot's full-price pool entry so a placement flip always
        // derives from the same base (flip twice = bit-identical
        // restore).
        let mut mirror = pool.clone();
        let mut pristine = pool.clone();
        let mut mirror_sel: Vec<bool> = start.iter().collect();
        let mut recycle = 0usize;
        let spot_pool = PoolCharge::new(0.5, 1.25, InterruptionRisk::new(0.25));
        let placed = |base: &ViewCharge, p: Placement| -> ViewCharge {
            let mut c = match p {
                Placement::Reserved => base.clone(),
                Placement::Spot => spot_pool.adjust(base),
            };
            c.placement = p;
            c
        };

        for (step, &(op, arg)) in ops.iter().enumerate() {
            match op {
                // Add: splice in a (possibly repeated) pool charge.
                0 => {
                    let charge = pool[recycle % pool.len()].clone();
                    recycle += 1;
                    let k = ev.add_candidate(charge.clone());
                    prop_assert_eq!(k, mirror.len(), "add index at step {}", step);
                    mirror.push(charge.clone());
                    pristine.push(charge);
                    mirror_sel.push(false);
                }
                // Remove: retire an arbitrary candidate (selected or not).
                1 => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let j = arg % mirror.len();
                    let removed = ev.remove_candidate(j);
                    let expected = mirror.swap_remove(j);
                    pristine.swap_remove(j);
                    mirror_sel.swap_remove(j);
                    prop_assert_eq!(removed, expected, "removed charge at step {}", step);
                }
                // Flip: toggle an arbitrary candidate's selection.
                2 => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let j = arg % mirror.len();
                    ev.toggle(j);
                    mirror_sel[j] = !mirror_sel[j];
                }
                // Placement flip: move an arbitrary candidate to the
                // other pool via an update_charge splice.
                _ => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let j = arg % mirror.len();
                    let flipped = mirror[j].placement.flipped();
                    let charge = placed(&pristine[j], flipped);
                    let old = ev.update_charge(j, charge.clone());
                    prop_assert_eq!(&old, &mirror[j], "displaced charge at step {}", step);
                    mirror[j] = charge;
                }
            }
            let rebuilt = mv_select::SelectionProblem::new(model.clone(), mirror.clone());
            let sel = SelectionSet::from_bools(&mirror_sel);
            let incremental = ev.snapshot();
            let full = rebuilt.evaluate(&sel);
            prop_assert_eq!(&incremental.selection, &full.selection,
                "selection diverged at step {}", step);
            prop_assert_eq!(incremental.time, full.time,
                "time diverged at step {}", step);
            prop_assert_eq!(&incremental.breakdown, &full.breakdown,
                "breakdown diverged at step {}", step);
            prop_assert_eq!(incremental.cost(), full.cost(),
                "cost diverged at step {}", step);
        }
    }

    /// Random **sparse** answer profiles — the regime the struct-of-
    /// arrays top-k tables exist for: larger workloads where most views
    /// answer a few queries (density down to 3%) and some queries have
    /// more answerers than `ANSWER_TOP_K` slots (density up to 90%).
    /// Arbitrary flip walks must stay bit-identical to the dense-path
    /// `SelectionProblem::evaluate` at every step.
    #[test]
    fn sparse_flip_walks_match_full_evaluation(
        seed in 0u64..10_000,
        n_queries in 1usize..40,
        n_candidates in 1usize..24,
        density_pct in 3u8..90,
        flips in proptest::collection::vec(0usize..24, 1..48),
    ) {
        let problem =
            fixtures::random_sparse_problem(seed, n_queries, n_candidates, density_pct as f64 / 100.0);
        let mut ev = IncrementalEvaluator::new(&problem);
        let mut sel = SelectionSet::empty(problem.len());
        for (step, &raw) in flips.iter().enumerate() {
            let k = raw % problem.len();
            ev.toggle(k);
            sel.set(k, !sel.contains(k));
            let incremental = ev.snapshot();
            let full = problem.evaluate(&sel);
            prop_assert_eq!(incremental.time, full.time,
                "time diverged at step {}", step);
            prop_assert_eq!(&incremental.breakdown, &full.breakdown,
                "breakdown diverged at step {}", step);
            prop_assert_eq!(incremental.cost(), full.cost(),
                "cost diverged at step {}", step);
        }
    }

    /// Sparse profiles under dynamic churn: the same
    /// add/remove/flip/placement-flip interleavings as the dense suite,
    /// over a sparse pool with a wide workload — so the top-k tables see
    /// entry removal, swap-remove renumbering and resplices, not just
    /// flips. Mirrors against a rebuilt static problem after every op.
    #[test]
    fn sparse_dynamic_interleavings_match_rebuilt_static_problem(
        seed in 0u64..10_000,
        n_queries in 1usize..32,
        density_pct in 5u8..80,
        mask in 0u64..(1 << 10),
        ops in proptest::collection::vec((0u8..4, 0usize..64), 1..30),
    ) {
        use mv_cost::{InterruptionRisk, Placement, PoolCharge, ViewCharge};

        let pool_problem =
            fixtures::random_sparse_problem(seed, n_queries, 10, density_pct as f64 / 100.0);
        let model = pool_problem.model().clone();
        let pool = pool_problem.candidates().to_vec();

        let start = SelectionSet::from_mask(mask & ((1 << 10) - 1), pool.len());
        let mut ev = IncrementalEvaluator::with_selection(&pool_problem, &start);

        let mut mirror = pool.clone();
        let mut pristine = pool.clone();
        let mut mirror_sel: Vec<bool> = start.iter().collect();
        let mut recycle = 0usize;
        let spot_pool = PoolCharge::new(0.5, 1.25, InterruptionRisk::new(0.25));
        let placed = |base: &ViewCharge, p: Placement| -> ViewCharge {
            let mut c = match p {
                Placement::Reserved => base.clone(),
                Placement::Spot => spot_pool.adjust(base),
            };
            c.placement = p;
            c
        };

        for (step, &(op, arg)) in ops.iter().enumerate() {
            match op {
                0 => {
                    let charge = pool[recycle % pool.len()].clone();
                    recycle += 1;
                    let k = ev.add_candidate(charge.clone());
                    prop_assert_eq!(k, mirror.len(), "add index at step {}", step);
                    mirror.push(charge.clone());
                    pristine.push(charge);
                    mirror_sel.push(false);
                }
                1 => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let j = arg % mirror.len();
                    let removed = ev.remove_candidate(j);
                    let expected = mirror.swap_remove(j);
                    pristine.swap_remove(j);
                    mirror_sel.swap_remove(j);
                    prop_assert_eq!(removed, expected, "removed charge at step {}", step);
                }
                2 => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let j = arg % mirror.len();
                    ev.toggle(j);
                    mirror_sel[j] = !mirror_sel[j];
                }
                _ => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let j = arg % mirror.len();
                    let flipped = mirror[j].placement.flipped();
                    let charge = placed(&pristine[j], flipped);
                    let old = ev.update_charge(j, charge.clone());
                    prop_assert_eq!(&old, &mirror[j], "displaced charge at step {}", step);
                    mirror[j] = charge;
                }
            }
            let rebuilt = mv_select::SelectionProblem::new(model.clone(), mirror.clone());
            let sel = SelectionSet::from_bools(&mirror_sel);
            let incremental = ev.snapshot();
            let full = rebuilt.evaluate(&sel);
            prop_assert_eq!(incremental.time, full.time,
                "time diverged at step {}", step);
            prop_assert_eq!(&incremental.breakdown, &full.breakdown,
                "breakdown diverged at step {}", step);
            prop_assert_eq!(incremental.cost(), full.cost(),
                "cost diverged at step {}", step);
        }
    }

    /// Problems with insert events exercise the evaluator's storage
    /// interval template (multi-interval timelines).
    #[test]
    fn storage_intervals_survive_inserts(
        seed in 0u64..10_000,
        insert_month in 1u8..11,
        insert_gb in 1u32..500,
        mask in 0u64..(1 << 6),
    ) {
        use mv_cost::CloudCostModel;
        use mv_units::{Gb, Months};

        let base = fixtures::random_problem(seed, 3, 6);
        let mut ctx = base.model().context().clone();
        ctx.months = Months::new(12.0);
        ctx.inserts = vec![(Months::new(insert_month as f64), Gb::new(insert_gb as f64))];
        let problem = mv_select::SelectionProblem::new(
            CloudCostModel::new(ctx),
            base.candidates().to_vec(),
        );

        let sel = SelectionSet::from_mask(mask, problem.len());
        let mut ev = IncrementalEvaluator::with_selection(&problem, &sel);
        prop_assert_eq!(ev.snapshot(), problem.evaluate(&sel));
    }
}
