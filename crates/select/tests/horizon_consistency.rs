//! Property: a horizon of identical epochs (zero drift) reproduces the
//! single-period solve bit-for-bit, per epoch.
//!
//! With no drift the chain's epoch 0 *is* the single-period problem, so
//! its solve must match `solve_local_search` exactly. Every later epoch
//! then carries the standing selection — whose materialization is sunk
//! — and hour rounding guarantees the marginal cost of any move is at
//! least what it was in the single-period problem (`ceil(a+b) − ceil(a)
//! ≤ ceil(b)`), so the selection is still a local optimum and must not
//! move. The per-epoch `full_price` reference (the selection re-priced
//! as if the epoch stood alone) must equal the single-period evaluation
//! bit-for-bit — through an evaluator that has been `retarget`ed and
//! charge-spliced at every boundary, which is exactly the warm-start
//! machinery under test. The warm-started chain must also agree
//! bit-for-bit with the rebuild-per-epoch reference implementation.
//!
//! MV1 is deliberately excluded: under a budget constraint the carried
//! discount frees headroom, so later epochs can legitimately afford
//! views the single-period solve could not (see `mv_select::epoch`'s
//! module docs).

use mv_select::epoch::EpochChain;
use mv_select::{fixtures, solve_local_search_bounded, Scenario};
use mv_units::Hours;
use proptest::prelude::*;

/// Large enough that every improvement pass runs to a true local
/// optimum instead of exhausting its budget (budget-truncated epochs
/// would let later epochs "continue" the search and drift legitimately).
const MOVES: usize = 10_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zero_drift_horizon_reproduces_the_single_period_solve(
        seed in 0u64..10_000,
        n_queries in 2usize..6,
        n_candidates in 3usize..9,
        epochs in 2usize..6,
        kind in 0u8..2,
        knob in 0.0f64..1.0,
    ) {
        let p = fixtures::random_problem(seed, n_queries, n_candidates);
        let baseline = p.baseline();
        let scenario = match kind {
            0 => Scenario::time_limit(Hours::new(
                baseline.time.value() * (0.05 + 0.9 * knob),
            )),
            _ => Scenario::tradeoff_normalized(knob),
        };
        let solo = solve_local_search_bounded(&p, scenario, MOVES);
        let chain = EpochChain::new(vec![p.model().clone(); epochs], p.candidates().to_vec());
        let steps = chain.solve_bounded(scenario, MOVES);
        prop_assert_eq!(steps.len(), epochs);

        // Epoch 0 is the single-period solve, bit for bit.
        prop_assert_eq!(&steps[0].outcome.evaluation, &solo.evaluation);
        prop_assert_eq!(&steps[0].outcome.baseline, &solo.baseline);

        for (e, step) in steps.iter().enumerate() {
            // The selection never moves with zero drift…
            prop_assert_eq!(
                step.selection(),
                &solo.evaluation.selection,
                "epoch {} selection drifted",
                e
            );
            // …and re-pricing it at full price through the warm-started
            // evaluator reproduces the single-period evaluation exactly.
            prop_assert_eq!(&step.full_price, &solo.evaluation, "epoch {}", e);
            if e > 0 {
                prop_assert!(step.added.is_empty(), "epoch {} added views", e);
                prop_assert!(step.dropped.is_empty(), "epoch {} dropped views", e);
                // Carried epochs never bill materialization.
                prop_assert_eq!(
                    step.outcome.evaluation.breakdown.compute_materialization,
                    mv_units::Money::ZERO
                );
            }
        }

        // The warm-started chain and the rebuild-per-epoch reference
        // are the same algorithm: bit-identical steps.
        let rebuilt = chain.solve_rebuilding_bounded(scenario, MOVES);
        for (e, (w, r)) in steps.iter().zip(&rebuilt).enumerate() {
            prop_assert_eq!(&w.outcome.evaluation, &r.outcome.evaluation, "epoch {}", e);
            prop_assert_eq!(&w.full_price, &r.full_price, "epoch {}", e);
        }
    }
}
