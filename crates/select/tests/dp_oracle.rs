//! The finite-horizon DP reference solver as an oracle for the
//! sequential chain.
//!
//! `EpochChain::solve_dp_exact` enumerates every selection trajectory
//! over a tiny pool (exact over selection states per epoch), minimizing
//! total constraint violation first and total scenario objective
//! second. The transition-aware chain commits each epoch greedily, so
//! it can only do as well or worse — the DP pins the chain from below
//! and quantifies its optimality gap, closing the PR 3 ROADMAP
//! follow-up ("a finite-horizon DP upper bound to quantify how far the
//! sequential chain sits from the true horizon optimum on small
//! pools").

use mv_cost::{CloudCostModel, CostContext, Placement, QueryCharge, ViewCharge};
use mv_select::epoch::EpochChain;
use mv_select::{fixtures, Scenario};
use mv_units::{Gb, Hours, Money, Months};
use proptest::prelude::*;

/// Total (violation, objective) of solved chain steps under `scenario`
/// — the same per-epoch terms the DP sums.
fn chain_totals(steps: &[mv_select::EpochStep], scenario: Scenario) -> (f64, f64) {
    steps
        .iter()
        .map(|s| {
            (
                scenario.violation(&s.outcome.evaluation),
                scenario.objective(&s.outcome.evaluation, &s.outcome.baseline),
            )
        })
        .fold((0.0, 0.0), |(v, o), (sv, so)| (v + sv, o + so))
}

/// Paper-like pool with per-epoch sinusoidal frequency drift (the same
/// shape as `mv_select::epoch`'s unit-test chain).
fn drifting_chain(problem: &mv_select::SelectionProblem, epochs: usize) -> EpochChain {
    let models = (0..epochs)
        .map(|e| {
            let mut ctx = problem.model().context().clone();
            let m = ctx.workload.len() as f64;
            for (i, q) in ctx.workload.iter_mut().enumerate() {
                let phase = (e as f64 + i as f64 / m) * std::f64::consts::TAU / 3.0;
                q.frequency = 1.0 + 0.8 * phase.sin();
            }
            mv_cost::CloudCostModel::new(ctx)
        })
        .collect();
    EpochChain::new(models, problem.candidates().to_vec())
}

const EPS: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The DP never loses to the chain in the lexicographic
    /// (violation, objective) order it optimizes.
    #[test]
    fn dp_lower_bounds_the_sequential_chain(
        seed in 0u64..10_000,
        n_queries in 2usize..5,
        n_candidates in 3usize..7,
        epochs in 2usize..5,
        kind in 0u8..3,
        knob in 0.0f64..1.0,
    ) {
        let p = fixtures::random_problem(seed, n_queries, n_candidates);
        let baseline = p.baseline();
        let scenario = match kind {
            0 => Scenario::budget(
                baseline.cost() + Money::from_dollars(1) + baseline.cost().scale(knob),
            ),
            1 => Scenario::time_limit(Hours::new(baseline.time.value() * (0.05 + 0.9 * knob))),
            _ => Scenario::tradeoff_normalized(knob),
        };
        let chain = drifting_chain(&p, epochs);
        let steps = chain.solve(scenario);
        let (chain_viol, chain_obj) = chain_totals(&steps, scenario);
        let dp = chain.solve_dp_exact(scenario);
        prop_assert_eq!(dp.selections.len(), epochs);
        prop_assert_eq!(dp.evaluations.len(), epochs);

        // Lexicographic domination: strictly less violation, or equal
        // violation and no worse objective.
        prop_assert!(
            dp.total_violation <= chain_viol + EPS,
            "DP violation {} exceeds chain {}",
            dp.total_violation,
            chain_viol
        );
        if (dp.total_violation - chain_viol).abs() <= EPS {
            prop_assert!(
                dp.total_objective <= chain_obj + EPS,
                "DP objective {} exceeds chain {} (gap {})",
                dp.total_objective,
                chain_obj,
                chain_obj - dp.total_objective
            );
        }
    }

    /// The joint selection+placement DP never loses to the fleet chain
    /// in the lexicographic (violation, objective) order it optimizes —
    /// the mixed-fleet extension of the PR 4 pin.
    #[test]
    fn dp_fleet_lower_bounds_the_joint_chain(
        seed in 0u64..10_000,
        n_queries in 2usize..5,
        n_candidates in 2usize..6,
        epochs in 2usize..5,
        spot_rate in 0.3f64..1.2,
        crunch_epoch in 0usize..4,
        kind in 0u8..3,
        knob in 0.0f64..1.0,
    ) {
        let p = fixtures::random_problem(seed, n_queries, n_candidates);
        let baseline = p.baseline();
        let scenario = match kind {
            0 => Scenario::budget(
                baseline.cost() + Money::from_dollars(1) + baseline.cost().scale(knob),
            ),
            1 => Scenario::time_limit(Hours::new(baseline.time.value() * (0.05 + 0.9 * knob))),
            _ => Scenario::tradeoff_normalized(knob),
        };
        let chain = drifting_chain(&p, epochs);
        // A fleet transform with a calm/crunch break: spot work is
        // discounted (or dear) and doubles once the crunch arrives.
        let reprice = |e: usize, _k: usize, p: Placement, c: &ViewCharge| -> ViewCharge {
            match p {
                Placement::Reserved => c.clone(),
                Placement::Spot => {
                    let factor = spot_rate * if e >= crunch_epoch { 2.0 } else { 1.0 };
                    ViewCharge {
                        materialization: c.materialization * factor,
                        maintenance: c.maintenance * factor,
                        ..c.clone()
                    }
                }
            }
        };
        let initial = vec![Placement::Reserved; n_candidates];
        let steps = chain.solve_fleet(scenario, &initial, true, &reprice);
        let (chain_viol, chain_obj) = chain_totals(&steps, scenario);
        let dp = chain.solve_dp_fleet(scenario, &reprice);
        prop_assert_eq!(dp.selections.len(), epochs);
        prop_assert_eq!(dp.placements.len(), epochs);
        prop_assert!(
            dp.total_violation <= chain_viol + EPS,
            "joint DP violation {} exceeds chain {}",
            dp.total_violation,
            chain_viol
        );
        if (dp.total_violation - chain_viol).abs() <= EPS {
            prop_assert!(
                dp.total_objective <= chain_obj + EPS,
                "joint DP objective {} exceeds chain {} (gap {})",
                dp.total_objective,
                chain_obj,
                chain_obj - dp.total_objective
            );
        }
    }

    /// On a single-epoch horizon the DP degenerates to the exhaustive
    /// single-period optimum.
    #[test]
    fn single_epoch_dp_matches_exhaustive(
        seed in 0u64..10_000,
        n_queries in 2usize..5,
        n_candidates in 3usize..7,
        knob in 0.0f64..1.0,
    ) {
        let p = fixtures::random_problem(seed, n_queries, n_candidates);
        let baseline = p.baseline();
        let scenario = Scenario::tradeoff_normalized(knob);
        let chain = EpochChain::new(vec![p.model().clone()], p.candidates().to_vec());
        let dp = chain.solve_dp_exact(scenario);
        let exhaustive = mv_select::solve_exhaustive(&p, scenario);
        let dp_obj = scenario.objective(&dp.evaluations[0], &baseline);
        let ex_obj = scenario.objective(&exhaustive.evaluation, &baseline);
        prop_assert!(
            (dp_obj - ex_obj).abs() <= EPS,
            "single-epoch DP objective {} vs exhaustive {}",
            dp_obj,
            ex_obj
        );
    }
}

/// The churn fixture is the canonical gap witness — and the DP exposes
/// a *strictly positive* chain gap on it: the chain, greedy per epoch,
/// only materializes the cold specialist once its query turns hot in
/// epoch 1, while the DP — which sees the whole horizon — pre-builds
/// both specialists in epoch 0 and never touches the selection again.
/// Quantifying exactly this kind of lookahead gap is what the oracle is
/// for.
#[test]
fn dp_quantifies_a_positive_lookahead_gap_on_the_churn_fixture() {
    let chain = fixtures::churn_chain(4);
    let scenario = Scenario::tradeoff(0.02);
    let steps = chain.solve(scenario);
    let (chain_viol, chain_obj) = chain_totals(&steps, scenario);
    let dp = chain.solve_dp_exact(scenario);
    assert_eq!(dp.total_violation, 0.0);
    assert_eq!(chain_viol, 0.0);
    let gap = chain_obj - dp.total_objective;
    assert!(gap > 0.0, "the chain should trail the DP here, gap {gap}");
    // The DP settles on both specialists from epoch 0; the chain only
    // reaches that set in epoch 1.
    assert_eq!(dp.selections[0].count_ones(), 2);
    assert_eq!(steps[0].selection().count_ones(), 1);
    for sel in &dp.selections[1..] {
        assert_eq!(sel, &dp.selections[0]);
    }
    // And the DP's total bill is strictly cheaper.
    let chain_cost: Money = steps.iter().map(|s| s.outcome.evaluation.cost()).sum();
    assert!(
        dp.total_cost() < chain_cost,
        "dp {} vs chain {}",
        dp.total_cost(),
        chain_cost
    );
}

#[test]
#[should_panic(expected = "at most 12 candidates")]
fn dp_rejects_oversized_pools() {
    let p = fixtures::random_problem(1, 3, 13);
    let chain = EpochChain::new(vec![p.model().clone()], p.candidates().to_vec());
    chain.solve_dp_exact(Scenario::tradeoff_normalized(0.5));
}

/// One always-hot query whose specialist view is mandatory under the
/// time limit; placement is the only real decision. Spot work clears
/// at 90% of reserved until a capacity crunch doubles it from epoch 1
/// onward. Integer-hour charges so AWS hour rounding is exact.
fn crunch_fleet_chain(epochs: usize) -> EpochChain {
    let pricing = mv_pricing::presets::aws_2012();
    let instance = pricing.compute.instance("small").unwrap().clone();
    let models: Vec<CloudCostModel> = (0..epochs)
        .map(|_| {
            let mut q = QueryCharge::new("Q", Gb::new(0.01), Hours::new(10.0));
            q.frequency = 5.0;
            CloudCostModel::new(CostContext {
                pricing: pricing.clone(),
                instance: instance.clone(),
                nb_instances: 1,
                months: Months::new(1.0),
                dataset_size: Gb::new(10.0),
                inserts: vec![],
                workload: vec![q],
            })
        })
        .collect();
    let pool = vec![ViewCharge::new(
        "spec-Q",
        Gb::new(1.0),
        Hours::new(10.0),
        Hours::new(10.0),
        1,
    )
    .answers(0, Hours::new(0.5))];
    EpochChain::new(models, pool)
}

/// The placement lookahead gap, pinned strictly positive: spot is the
/// myopically cheaper pool in epoch 0 (18 h of effective work vs 20 h
/// reserved), so the greedy chain parks the specialist on spot — and
/// once the crunch doubles spot work, staying put (18 h/epoch) is
/// always locally cheaper than moving (a 20 h rebuild+refresh), so the
/// chain never escapes. The DP sees the whole horizon and pre-places
/// the view on reserved **ahead of the crunch**, paying 2 h more up
/// front to save 8 h every crunch epoch.
#[test]
fn dp_fleet_pre_places_on_reserved_ahead_of_a_crunch() {
    let chain = crunch_fleet_chain(4);
    // The view is mandatory: 50 h of base processing vs a 10 h limit.
    let scenario = Scenario::time_limit(Hours::new(10.0));
    let reprice = |e: usize, _k: usize, p: Placement, c: &ViewCharge| -> ViewCharge {
        match p {
            Placement::Reserved => c.clone(),
            Placement::Spot => {
                let factor = 0.9 * if e >= 1 { 2.0 } else { 1.0 };
                ViewCharge {
                    materialization: c.materialization * factor,
                    maintenance: c.maintenance * factor,
                    ..c.clone()
                }
            }
        }
    };
    let steps = chain.solve_fleet(scenario, &[Placement::Reserved], true, &reprice);
    let (chain_viol, chain_obj) = chain_totals(&steps, scenario);
    // The chain takes the myopic bait: spot in epoch 0, spot forever.
    for (e, s) in steps.iter().enumerate() {
        assert_eq!(s.selection().count_ones(), 1, "epoch {e}");
        assert_eq!(s.placements[0], Placement::Spot, "epoch {e}");
    }
    let dp = chain.solve_dp_fleet(scenario, &reprice);
    assert_eq!(dp.total_violation, 0.0);
    assert_eq!(chain_viol, 0.0);
    // The DP keeps the view reserved from epoch 0 and never moves it.
    for (e, assignment) in dp.placements.iter().enumerate() {
        assert_eq!(dp.selections[e].count_ones(), 1, "epoch {e}");
        assert_eq!(assignment[0], Placement::Reserved, "epoch {e}");
    }
    let gap = chain_obj - dp.total_objective;
    assert!(
        gap > 0.0,
        "the chain should trail the joint DP here, gap {gap}"
    );
    // And the bills agree with the hour arithmetic: chain 18 h/epoch of
    // view work vs DP 20 h then 10 h/epoch — a 22 h horizon saving at
    // $0.12/h.
    let chain_cost: Money = steps.iter().map(|s| s.outcome.evaluation.cost()).sum();
    assert_eq!(
        chain_cost - dp.total_cost(),
        Money::from_dollars_str("2.64").unwrap()
    );
}
