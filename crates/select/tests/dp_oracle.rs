//! The finite-horizon DP reference solver as an oracle for the
//! sequential chain.
//!
//! `EpochChain::solve_dp_exact` enumerates every selection trajectory
//! over a tiny pool (exact over selection states per epoch), minimizing
//! total constraint violation first and total scenario objective
//! second. The transition-aware chain commits each epoch greedily, so
//! it can only do as well or worse — the DP pins the chain from below
//! and quantifies its optimality gap, closing the PR 3 ROADMAP
//! follow-up ("a finite-horizon DP upper bound to quantify how far the
//! sequential chain sits from the true horizon optimum on small
//! pools").

use mv_select::epoch::EpochChain;
use mv_select::{fixtures, Scenario};
use mv_units::{Hours, Money};
use proptest::prelude::*;

/// Total (violation, objective) of solved chain steps under `scenario`
/// — the same per-epoch terms the DP sums.
fn chain_totals(steps: &[mv_select::EpochStep], scenario: Scenario) -> (f64, f64) {
    steps
        .iter()
        .map(|s| {
            (
                scenario.violation(&s.outcome.evaluation),
                scenario.objective(&s.outcome.evaluation, &s.outcome.baseline),
            )
        })
        .fold((0.0, 0.0), |(v, o), (sv, so)| (v + sv, o + so))
}

/// Paper-like pool with per-epoch sinusoidal frequency drift (the same
/// shape as `mv_select::epoch`'s unit-test chain).
fn drifting_chain(problem: &mv_select::SelectionProblem, epochs: usize) -> EpochChain {
    let models = (0..epochs)
        .map(|e| {
            let mut ctx = problem.model().context().clone();
            let m = ctx.workload.len() as f64;
            for (i, q) in ctx.workload.iter_mut().enumerate() {
                let phase = (e as f64 + i as f64 / m) * std::f64::consts::TAU / 3.0;
                q.frequency = 1.0 + 0.8 * phase.sin();
            }
            mv_cost::CloudCostModel::new(ctx)
        })
        .collect();
    EpochChain::new(models, problem.candidates().to_vec())
}

const EPS: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The DP never loses to the chain in the lexicographic
    /// (violation, objective) order it optimizes.
    #[test]
    fn dp_lower_bounds_the_sequential_chain(
        seed in 0u64..10_000,
        n_queries in 2usize..5,
        n_candidates in 3usize..7,
        epochs in 2usize..5,
        kind in 0u8..3,
        knob in 0.0f64..1.0,
    ) {
        let p = fixtures::random_problem(seed, n_queries, n_candidates);
        let baseline = p.baseline();
        let scenario = match kind {
            0 => Scenario::budget(
                baseline.cost() + Money::from_dollars(1) + baseline.cost().scale(knob),
            ),
            1 => Scenario::time_limit(Hours::new(baseline.time.value() * (0.05 + 0.9 * knob))),
            _ => Scenario::tradeoff_normalized(knob),
        };
        let chain = drifting_chain(&p, epochs);
        let steps = chain.solve(scenario);
        let (chain_viol, chain_obj) = chain_totals(&steps, scenario);
        let dp = chain.solve_dp_exact(scenario);
        prop_assert_eq!(dp.selections.len(), epochs);
        prop_assert_eq!(dp.evaluations.len(), epochs);

        // Lexicographic domination: strictly less violation, or equal
        // violation and no worse objective.
        prop_assert!(
            dp.total_violation <= chain_viol + EPS,
            "DP violation {} exceeds chain {}",
            dp.total_violation,
            chain_viol
        );
        if (dp.total_violation - chain_viol).abs() <= EPS {
            prop_assert!(
                dp.total_objective <= chain_obj + EPS,
                "DP objective {} exceeds chain {} (gap {})",
                dp.total_objective,
                chain_obj,
                chain_obj - dp.total_objective
            );
        }
    }

    /// On a single-epoch horizon the DP degenerates to the exhaustive
    /// single-period optimum.
    #[test]
    fn single_epoch_dp_matches_exhaustive(
        seed in 0u64..10_000,
        n_queries in 2usize..5,
        n_candidates in 3usize..7,
        knob in 0.0f64..1.0,
    ) {
        let p = fixtures::random_problem(seed, n_queries, n_candidates);
        let baseline = p.baseline();
        let scenario = Scenario::tradeoff_normalized(knob);
        let chain = EpochChain::new(vec![p.model().clone()], p.candidates().to_vec());
        let dp = chain.solve_dp_exact(scenario);
        let exhaustive = mv_select::solve_exhaustive(&p, scenario);
        let dp_obj = scenario.objective(&dp.evaluations[0], &baseline);
        let ex_obj = scenario.objective(&exhaustive.evaluation, &baseline);
        prop_assert!(
            (dp_obj - ex_obj).abs() <= EPS,
            "single-epoch DP objective {} vs exhaustive {}",
            dp_obj,
            ex_obj
        );
    }
}

/// The churn fixture is the canonical gap witness — and the DP exposes
/// a *strictly positive* chain gap on it: the chain, greedy per epoch,
/// only materializes the cold specialist once its query turns hot in
/// epoch 1, while the DP — which sees the whole horizon — pre-builds
/// both specialists in epoch 0 and never touches the selection again.
/// Quantifying exactly this kind of lookahead gap is what the oracle is
/// for.
#[test]
fn dp_quantifies_a_positive_lookahead_gap_on_the_churn_fixture() {
    let chain = fixtures::churn_chain(4);
    let scenario = Scenario::tradeoff(0.02);
    let steps = chain.solve(scenario);
    let (chain_viol, chain_obj) = chain_totals(&steps, scenario);
    let dp = chain.solve_dp_exact(scenario);
    assert_eq!(dp.total_violation, 0.0);
    assert_eq!(chain_viol, 0.0);
    let gap = chain_obj - dp.total_objective;
    assert!(gap > 0.0, "the chain should trail the DP here, gap {gap}");
    // The DP settles on both specialists from epoch 0; the chain only
    // reaches that set in epoch 1.
    assert_eq!(dp.selections[0].count_ones(), 2);
    assert_eq!(steps[0].selection().count_ones(), 1);
    for sel in &dp.selections[1..] {
        assert_eq!(sel, &dp.selections[0]);
    }
    // And the DP's total bill is strictly cheaper.
    let chain_cost: Money = steps.iter().map(|s| s.outcome.evaluation.cost()).sum();
    assert!(
        dp.total_cost() < chain_cost,
        "dp {} vs chain {}",
        dp.total_cost(),
        chain_cost
    );
}

#[test]
#[should_panic(expected = "at most 12 candidates")]
fn dp_rejects_oversized_pools() {
    let p = fixtures::random_problem(1, 3, 13);
    let chain = EpochChain::new(vec![p.model().clone()], p.candidates().to_vec());
    chain.solve_dp_exact(Scenario::tradeoff_normalized(0.5));
}
