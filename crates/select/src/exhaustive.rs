//! Exhaustive subset enumeration — the ground-truth solver.
//!
//! The paper's experiment has ≤ 16 candidates (65 536 subsets), so exact
//! enumeration is cheap; the repository uses it to validate every other
//! solver on every experiment instance.

use crate::{Outcome, Scenario, SelectionProblem, SolverKind};

/// Maximum candidate count accepted (2^24 evaluations ≈ seconds).
pub const MAX_CANDIDATES: usize = 24;

/// Evaluates every subset and returns the scenario-best one.
///
/// # Panics
/// Panics if the problem has more than [`MAX_CANDIDATES`] candidates.
pub fn solve_exhaustive(problem: &SelectionProblem, scenario: Scenario) -> Outcome {
    let n = problem.len();
    assert!(
        n <= MAX_CANDIDATES,
        "exhaustive search over {n} candidates would enumerate 2^{n} subsets"
    );
    let baseline = problem.baseline();
    let mut best = baseline.clone();
    for mask in 1u64..(1u64 << n) {
        let selection: Vec<bool> = (0..n).map(|k| mask & (1 << k) != 0).collect();
        let e = problem.evaluate(&selection);
        if scenario.better(&e, &best, &baseline) {
            best = e;
        }
    }
    Outcome::new(best, baseline, scenario, SolverKind::Exhaustive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_like_problem;
    use mv_units::{Hours, Money};

    #[test]
    fn unlimited_budget_minimizes_time() {
        let p = paper_like_problem();
        let o = solve_exhaustive(&p, Scenario::budget(Money::from_dollars(10_000)));
        // With an unlimited budget the fastest selection must reach the
        // best per-query times available.
        let all = p.evaluate(&vec![true; p.len()]);
        assert_eq!(o.evaluation.time, all.time);
        assert!(o.feasible());
    }

    #[test]
    fn zero_budget_reports_infeasible_or_cheapest() {
        let p = paper_like_problem();
        let o = solve_exhaustive(&p, Scenario::budget(Money::from_cents(1)));
        // Nothing satisfies a 1-cent budget; the solver returns the
        // least-violating selection and flags infeasibility.
        assert!(!o.feasible());
    }

    #[test]
    fn loose_time_limit_minimizes_cost() {
        let p = paper_like_problem();
        let o = solve_exhaustive(&p, Scenario::time_limit(Hours::new(1_000.0)));
        assert!(o.feasible());
        // Cost can only be <= every other subset's cost; spot-check two.
        let base = p.baseline();
        assert!(o.evaluation.cost() <= base.cost());
        let all = p.evaluate(&vec![true; p.len()]);
        assert!(o.evaluation.cost() <= all.cost());
    }

    #[test]
    fn tradeoff_alpha_extremes() {
        let p = paper_like_problem();
        // alpha = 1: pure time minimization (normalized).
        let o_time = solve_exhaustive(&p, Scenario::tradeoff_normalized(1.0));
        let best_time = p.evaluate(&vec![true; p.len()]).time;
        assert_eq!(o_time.evaluation.time, best_time);
        // alpha = 0: pure cost minimization.
        let o_cost = solve_exhaustive(&p, Scenario::tradeoff_normalized(0.0));
        let o_mv2 = solve_exhaustive(&p, Scenario::time_limit(Hours::new(1e6)));
        assert_eq!(o_cost.evaluation.cost(), o_mv2.evaluation.cost());
    }

    #[test]
    #[should_panic(expected = "exhaustive search")]
    fn too_many_candidates_panics() {
        let p = crate::fixtures::random_problem(1, 2, 25);
        solve_exhaustive(&p, Scenario::tradeoff(0.5));
    }
}
