//! Exhaustive subset enumeration — the ground-truth solver.
//!
//! The paper's experiment has ≤ 16 candidates (65 536 subsets), so exact
//! enumeration is cheap; the repository uses it to validate every other
//! solver on every experiment instance.
//!
//! Subsets are visited in ascending mask order with an
//! [`IncrementalEvaluator`]: stepping from mask to mask+1 flips the run
//! of trailing set bits off and the next bit on — amortized two flips
//! per subset — so the sweep costs O(2ⁿ·m) instead of O(2ⁿ·n·m). Above
//! [`PARALLEL_THRESHOLD`] candidates the mask range is split into
//! contiguous chunks swept by one thread each (its own evaluator), and
//! the per-chunk winners are merged in ascending chunk order, which
//! preserves the serial sweep's first-wins tie-breaking exactly.

use crate::sweep;
use crate::{Evaluation, Outcome, Scenario, SelectionProblem, SolverKind};

/// Maximum candidate count accepted (2^24 evaluations ≈ seconds).
pub const MAX_CANDIDATES: usize = 24;

/// Candidate count above which the sweep fans out across threads
/// (2^14 = 16 384 subsets; below that thread setup dominates).
pub const PARALLEL_THRESHOLD: usize = 14;

/// Evaluates every subset and returns the scenario-best one, choosing a
/// thread count automatically.
///
/// # Panics
/// Panics if the problem has more than [`MAX_CANDIDATES`] candidates.
pub fn solve_exhaustive(problem: &SelectionProblem, scenario: Scenario) -> Outcome {
    solve_exhaustive_with_threads(problem, scenario, sweep::auto_threads(problem.len()))
}

/// [`solve_exhaustive`] with an explicit thread count (1 = serial).
/// The result is identical for every thread count.
pub fn solve_exhaustive_with_threads(
    problem: &SelectionProblem,
    scenario: Scenario,
    threads: usize,
) -> Outcome {
    let n = problem.len();
    assert!(
        n <= MAX_CANDIDATES,
        "exhaustive search over {n} candidates would enumerate 2^{n} subsets"
    );
    let baseline = problem.baseline();
    let total: u64 = 1u64 << n;
    let threads = threads.max(1).min(total.max(1) as usize);

    let chunk_bests = sweep::chunked(total, threads, |lo, hi| {
        // Mask 0 is the baseline, folded in below; every other mask
        // competes. Ties keep the lower mask.
        let mut best: Option<Evaluation> = None;
        sweep::sweep_masks(problem, lo, hi, |mask, ev| {
            if mask == 0 {
                return;
            }
            let e = ev.snapshot();
            let replace = match &best {
                None => true,
                Some(cur) => scenario.better(&e, cur, &baseline),
            };
            if replace {
                best = Some(e);
            }
        });
        best
    });
    // Ascending-chunk merge keeps the lowest-mask winner among ties,
    // exactly like a serial sweep.
    let mut best: Option<Evaluation> = None;
    for candidate in chunk_bests.into_iter().flatten() {
        let replace = match &best {
            None => true,
            Some(cur) => scenario.better(&candidate, cur, &baseline),
        };
        if replace {
            best = Some(candidate);
        }
    }

    // Mask 0 (the baseline) is always part of the space.
    let chosen = match best {
        Some(e) if scenario.better(&e, &baseline, &baseline) => e,
        _ => baseline.clone(),
    };
    Outcome::new(chosen, baseline, scenario, SolverKind::Exhaustive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_like_problem, random_problem};
    use mv_cost::SelectionSet;
    use mv_units::{Hours, Money};

    #[test]
    fn unlimited_budget_minimizes_time() {
        let p = paper_like_problem();
        let o = solve_exhaustive(&p, Scenario::budget(Money::from_dollars(10_000)));
        // With an unlimited budget the fastest selection must reach the
        // best per-query times available.
        let all = p.evaluate(&SelectionSet::full(p.len()));
        assert_eq!(o.evaluation.time, all.time);
        assert!(o.feasible());
    }

    #[test]
    fn zero_budget_reports_infeasible_or_cheapest() {
        let p = paper_like_problem();
        let o = solve_exhaustive(&p, Scenario::budget(Money::from_cents(1)));
        // Nothing satisfies a 1-cent budget; the solver returns the
        // least-violating selection and flags infeasibility.
        assert!(!o.feasible());
    }

    #[test]
    fn loose_time_limit_minimizes_cost() {
        let p = paper_like_problem();
        let o = solve_exhaustive(&p, Scenario::time_limit(Hours::new(1_000.0)));
        assert!(o.feasible());
        // Cost can only be <= every other subset's cost; spot-check two.
        let base = p.baseline();
        assert!(o.evaluation.cost() <= base.cost());
        let all = p.evaluate(&SelectionSet::full(p.len()));
        assert!(o.evaluation.cost() <= all.cost());
    }

    #[test]
    fn tradeoff_alpha_extremes() {
        let p = paper_like_problem();
        // alpha = 1: pure time minimization (normalized).
        let o_time = solve_exhaustive(&p, Scenario::tradeoff_normalized(1.0));
        let best_time = p.evaluate(&SelectionSet::full(p.len())).time;
        assert_eq!(o_time.evaluation.time, best_time);
        // alpha = 0: pure cost minimization.
        let o_cost = solve_exhaustive(&p, Scenario::tradeoff_normalized(0.0));
        let o_mv2 = solve_exhaustive(&p, Scenario::time_limit(Hours::new(1e6)));
        assert_eq!(o_cost.evaluation.cost(), o_mv2.evaluation.cost());
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        for seed in 0..6 {
            let p = random_problem(seed, 4, 9);
            for s in [
                Scenario::budget(p.baseline().cost() + Money::from_cents(40)),
                Scenario::time_limit(Hours::new(0.3)),
                Scenario::tradeoff_normalized(0.5),
            ] {
                let serial = solve_exhaustive_with_threads(&p, s, 1);
                for threads in [2, 3, 8] {
                    let par = solve_exhaustive_with_threads(&p, s, threads);
                    assert_eq!(
                        serial.evaluation, par.evaluation,
                        "seed {seed} {s:?} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exhaustive search")]
    fn too_many_candidates_panics() {
        let p = crate::fixtures::random_problem(1, 2, 25);
        solve_exhaustive(&p, Scenario::tradeoff(0.5));
    }
}
