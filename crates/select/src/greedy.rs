//! Greedy hill-climbing baseline.
//!
//! Starts from the empty selection and repeatedly flips on the single view
//! that most improves the scenario ordering, stopping at a local optimum.
//! Classic view-selection greedy (HRU-style) adapted to the paper's
//! monetary objectives; used as a baseline in the solver ablation.
//!
//! Probes run through the [`IncrementalEvaluator`]: each candidate flip
//! costs O(m) instead of a full O(n·m) re-evaluation, making a greedy
//! pass O(n·(n + m)) overall.

use crate::{Evaluation, IncrementalEvaluator, Outcome, Scenario, SelectionProblem, SolverKind};

/// Solves `scenario` by add-only greedy search.
pub fn solve_greedy(problem: &SelectionProblem, scenario: Scenario) -> Outcome {
    let baseline = problem.baseline();
    let mut ev = IncrementalEvaluator::new(problem);
    let mut current = baseline.clone();
    loop {
        let mut best_flip: Option<(usize, Evaluation)> = None;
        for k in 0..problem.len() {
            if ev.is_selected(k) {
                continue;
            }
            ev.flip(k);
            let e = ev.snapshot();
            ev.unflip(k);
            if scenario.better(&e, &current, &baseline) {
                let replace = match &best_flip {
                    None => true,
                    Some((_, cur)) => scenario.better(&e, cur, &baseline),
                };
                if replace {
                    best_flip = Some((k, e));
                }
            }
        }
        match best_flip {
            Some((k, e)) => {
                ev.flip(k);
                current = e;
            }
            None => break,
        }
    }
    Outcome::new(current, baseline, scenario, SolverKind::Greedy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::solve_exhaustive;
    use crate::fixtures::{paper_like_problem, random_problem};
    use mv_units::{Hours, Money};

    #[test]
    fn greedy_is_feasible_when_possible() {
        let p = paper_like_problem();
        let base = p.baseline();
        let o = solve_greedy(&p, Scenario::budget(base.cost() + Money::from_dollars(1)));
        assert!(o.feasible());
        assert!(o.evaluation.time <= base.time);
    }

    #[test]
    fn greedy_never_worse_than_empty() {
        for seed in 0..20 {
            let p = random_problem(seed, 3, 5);
            let s = Scenario::tradeoff_normalized(0.4);
            let o = solve_greedy(&p, s);
            let base_obj = s.objective(&o.baseline, &o.baseline);
            assert!(o.objective() <= base_obj + 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn greedy_close_to_exhaustive_on_small_instances() {
        let mut within_5pct = 0;
        let total = 15;
        for seed in 0..total {
            let p = random_problem(seed + 100, 3, 5);
            let s = Scenario::time_limit(Hours::new(0.5));
            let g = solve_greedy(&p, s);
            let x = solve_exhaustive(&p, s);
            if !x.feasible() || g.objective() <= x.objective() * 1.05 + 1e-9 {
                within_5pct += 1;
            }
        }
        // Greedy is a heuristic; demand near-optimality on most instances.
        assert!(within_5pct >= total - 3, "only {within_5pct}/{total}");
    }

    #[test]
    fn greedy_reported_evaluation_is_consistent() {
        // The outcome's evaluation must be reproducible by a full
        // re-evaluation of its selection (guards the incremental path).
        for seed in 0..10 {
            let p = random_problem(seed + 300, 4, 7);
            let o = solve_greedy(&p, Scenario::tradeoff_normalized(0.5));
            assert_eq!(
                o.evaluation,
                p.evaluate(&o.evaluation.selection),
                "seed {seed}"
            );
        }
    }
}
