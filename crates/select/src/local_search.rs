//! Local-search selection: flip and swap moves over the incremental
//! evaluator's O(m) probes.
//!
//! Add-only greedy (HRU-style) gets stuck at local optima a single
//! *swap* — retire one selected view, admit one unselected — would
//! escape: the classic repair move in local-search view selection
//! (Anderson & Sasaki's workload-acceleration search). Every move here
//! is probed through the [`IncrementalEvaluator`], so a full
//! best-improvement round over flips and swaps costs O(n²·m) probes of
//! O(m) work each instead of O(n²) full re-evaluations.
//!
//! Two entry points:
//!
//! * [`solve_local_search`] — a standalone solver: greedy fill, then a
//!   bounded improvement pass. By construction never worse than
//!   [`crate::solve_greedy`] under the same scenario.
//! * [`improve`] — the improvement pass alone, over any evaluator
//!   position. The streaming advisor calls this after each admission
//!   batch, which is what makes the streamed search *anytime*: the
//!   current selection is always a locally-repaired answer.

use mv_cost::{Placement, ViewCharge};

use crate::{Evaluation, IncrementalEvaluator, Outcome, Scenario, SelectionProblem, SolverKind};

/// The effective charge candidate `k` would carry under placement `p`
/// this epoch — the hook the joint selection+placement pass
/// ([`improve_joint`]) probes placement moves through. Implementations
/// must be deterministic in `(k, p)` (a flip probed and reverted must
/// restore the exact prior charge) and must not change the answer
/// profile (so every placement splice stays on
/// [`IncrementalEvaluator::update_charge`]'s O(1) fast path).
pub type ChargeFor<'a> = &'a dyn Fn(usize, Placement) -> ViewCharge;

/// A candidate move over the current selection (and, in joint mode,
/// the current placement assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    /// Select `k`.
    FlipOn(usize),
    /// Deselect `k`.
    FlipOff(usize),
    /// Deselect `out`, select `in_` (one probe, two flips).
    Swap { out: usize, in_: usize },
    /// Move the *selected* view `k` to the other fleet pool: one O(1)
    /// charge splice, selection unchanged.
    Place(usize),
    /// Select the unselected view `k` directly on the other pool
    /// (charge splice + flip) — the compound move that admits a view
    /// whose current placement alone would never pay off.
    FlipOnPlaced(usize),
}

/// Applies `mv`, returning the displaced charge for placement moves
/// (needed to revert them bit-exactly).
fn apply(
    ev: &mut IncrementalEvaluator<'_>,
    mv: Move,
    joint: Option<(&[Placement], ChargeFor<'_>)>,
) -> Option<ViewCharge> {
    match mv {
        Move::FlipOn(k) => {
            ev.flip(k);
            None
        }
        Move::FlipOff(k) => {
            ev.unflip(k);
            None
        }
        Move::Swap { out, in_ } => {
            ev.unflip(out);
            ev.flip(in_);
            None
        }
        Move::Place(k) => {
            let (placements, charge_for) = joint.expect("placement move outside joint mode");
            Some(ev.update_charge(k, charge_for(k, placements[k].flipped())))
        }
        Move::FlipOnPlaced(k) => {
            let (placements, charge_for) = joint.expect("placement move outside joint mode");
            let old = ev.update_charge(k, charge_for(k, placements[k].flipped()));
            ev.flip(k);
            Some(old)
        }
    }
}

/// Undoes `mv` (moves are involutions up to order); `undo` is the
/// charge [`apply`] displaced, for placement moves.
fn revert(ev: &mut IncrementalEvaluator<'_>, mv: Move, undo: Option<ViewCharge>) {
    match mv {
        Move::FlipOn(k) => ev.unflip(k),
        Move::FlipOff(k) => ev.flip(k),
        Move::Swap { out, in_ } => {
            ev.unflip(in_);
            ev.flip(out);
        }
        Move::Place(k) => {
            ev.update_charge(k, undo.expect("placement move displaced a charge"));
        }
        Move::FlipOnPlaced(k) => {
            ev.unflip(k);
            ev.update_charge(k, undo.expect("placement move displaced a charge"));
        }
    }
}

/// Greedy fill from the evaluator's current position: repeatedly apply
/// the single most-improving flip-on, stopping at a flip-on local
/// optimum. Starting from the empty selection this reproduces
/// [`crate::solve_greedy`]'s selection exactly (same move rule, same
/// tie-breaks). Returns the resulting evaluation.
pub fn greedy_fill(
    ev: &mut IncrementalEvaluator<'_>,
    scenario: Scenario,
    baseline: &Evaluation,
) -> Evaluation {
    let mut current = ev.snapshot();
    loop {
        let n = ev.problem().len();
        let mut best: Option<(usize, Evaluation)> = None;
        for k in 0..n {
            if ev.is_selected(k) {
                continue;
            }
            mv_obs::inc(mv_obs::Counter::SearchProbes);
            ev.flip(k);
            let e = ev.snapshot();
            ev.unflip(k);
            if scenario.better(&e, &current, baseline)
                && best
                    .as_ref()
                    .is_none_or(|(_, b)| scenario.better(&e, b, baseline))
            {
                best = Some((k, e));
            }
        }
        match best {
            Some((k, e)) => {
                ev.flip(k);
                current = e;
            }
            None => return current,
        }
    }
}

/// Bounded best-improvement pass: each round probes every flip-on,
/// flip-off and swap move, applies the best one that improves the
/// scenario ordering, and stops at a local optimum or after `max_moves`
/// applied moves. Returns the resulting evaluation (the evaluator is
/// left positioned on it).
pub fn improve(
    ev: &mut IncrementalEvaluator<'_>,
    scenario: Scenario,
    baseline: &Evaluation,
    max_moves: usize,
) -> Evaluation {
    improve_inner(ev, scenario, baseline, max_moves, None)
}

/// [`improve`] extended with the mixed-fleet placement dimension: on
/// top of the flip/swap neighborhood, each round probes moving any
/// *selected* view to the other pool ([`Move::Place`]) and admitting
/// any unselected view directly on the other pool
/// ([`Move::FlipOnPlaced`]). `placements` is the standing per-view
/// assignment (updated in place as moves are applied); `charge_for`
/// yields the effective charge of a view under either placement. With
/// the placement moves never improving, this is [`improve`] exactly —
/// same neighborhood enumeration order, same tie-breaks.
pub fn improve_joint(
    ev: &mut IncrementalEvaluator<'_>,
    scenario: Scenario,
    baseline: &Evaluation,
    max_moves: usize,
    placements: &mut [Placement],
    charge_for: ChargeFor<'_>,
) -> Evaluation {
    improve_inner(
        ev,
        scenario,
        baseline,
        max_moves,
        Some((placements, charge_for)),
    )
}

fn improve_inner(
    ev: &mut IncrementalEvaluator<'_>,
    scenario: Scenario,
    baseline: &Evaluation,
    max_moves: usize,
    mut joint: Option<(&mut [Placement], ChargeFor<'_>)>,
) -> Evaluation {
    let mut current = ev.snapshot();
    for _ in 0..max_moves {
        let n = ev.problem().len();
        let selected: Vec<usize> = (0..n).filter(|&k| ev.is_selected(k)).collect();
        let unselected: Vec<usize> = (0..n).filter(|&k| !ev.is_selected(k)).collect();
        let mut moves: Vec<Move> = Vec::with_capacity(n + selected.len() * unselected.len());
        moves.extend(unselected.iter().map(|&k| Move::FlipOn(k)));
        moves.extend(selected.iter().map(|&k| Move::FlipOff(k)));
        for &out in &selected {
            for &in_ in &unselected {
                moves.push(Move::Swap { out, in_ });
            }
        }
        if joint.is_some() {
            // Placement moves probe after the selection neighborhood, so
            // joint mode with no improving placement move reproduces the
            // plain pass exactly (same enumeration, same tie-breaks).
            moves.extend(selected.iter().map(|&k| Move::Place(k)));
            moves.extend(unselected.iter().map(|&k| Move::FlipOnPlaced(k)));
        }
        let mut best: Option<(Move, Evaluation)> = None;
        mv_obs::add(mv_obs::Counter::SearchProbes, moves.len() as u64);
        for mv in moves {
            let shared = joint.as_ref().map(|(p, f)| (&**p, *f));
            let undo = apply(ev, mv, shared);
            let e = ev.snapshot();
            revert(ev, mv, undo);
            if scenario.better(&e, &current, baseline)
                && best
                    .as_ref()
                    .is_none_or(|(_, b)| scenario.better(&e, b, baseline))
            {
                best = Some((mv, e));
            }
        }
        match best {
            Some((mv, e)) => {
                let shared = joint.as_ref().map(|(p, f)| (&**p, *f));
                apply(ev, mv, shared);
                record_accepted(mv);
                if let (Move::Place(k) | Move::FlipOnPlaced(k), Some((placements, _))) =
                    (mv, joint.as_mut())
                {
                    placements[k] = placements[k].flipped();
                }
                current = e;
            }
            None => break,
        }
    }
    current
}

/// Telemetry for one accepted improvement move: per-kind counters plus
/// a trace event for the placement moves (the rare, interesting ones).
fn record_accepted(mv: Move) {
    if !mv_obs::enabled() {
        return;
    }
    match mv {
        Move::FlipOn(_) | Move::FlipOff(_) => mv_obs::inc(mv_obs::Counter::SearchFlipMoves),
        Move::Swap { .. } => mv_obs::inc(mv_obs::Counter::SearchSwapMoves),
        Move::Place(k) | Move::FlipOnPlaced(k) => {
            mv_obs::inc(mv_obs::Counter::SearchPlaceMoves);
            mv_obs::event("placement_move", &[("view", k as f64)]);
        }
    }
}

/// Default improvement budget for `n` candidates: enough rounds to turn
/// over the whole selection once, with a floor for tiny problems.
pub fn default_move_budget(n: usize) -> usize {
    (2 * n).max(16)
}

/// Solves `scenario` by greedy fill plus a bounded flip/swap improvement
/// pass. Never worse than [`crate::solve_greedy`]: the fill reproduces
/// greedy's selection and every subsequent move must strictly improve
/// the scenario ordering.
pub fn solve_local_search(problem: &SelectionProblem, scenario: Scenario) -> Outcome {
    solve_local_search_bounded(problem, scenario, default_move_budget(problem.len()))
}

/// [`solve_local_search`] with an explicit improvement-move budget.
pub fn solve_local_search_bounded(
    problem: &SelectionProblem,
    scenario: Scenario,
    max_moves: usize,
) -> Outcome {
    let baseline = problem.baseline();
    let mut ev = IncrementalEvaluator::new(problem);
    greedy_fill(&mut ev, scenario, &baseline);
    let best = improve(&mut ev, scenario, &baseline, max_moves);
    Outcome::new(best, baseline, scenario, SolverKind::LocalSearch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_like_problem, random_problem};
    use crate::{solve_exhaustive, solve_greedy};
    use mv_units::{Hours, Money};

    #[test]
    fn never_worse_than_greedy() {
        for seed in 0..25 {
            let p = random_problem(seed, 4, 7);
            for scenario in [
                Scenario::budget(p.baseline().cost() + Money::from_cents(60)),
                Scenario::time_limit(Hours::new(0.4)),
                Scenario::tradeoff_normalized(0.5),
            ] {
                let g = solve_greedy(&p, scenario);
                let l = solve_local_search(&p, scenario);
                assert!(
                    !scenario.better(&g.evaluation, &l.evaluation, &l.baseline),
                    "seed {seed} {}: greedy beat local search",
                    scenario.label()
                );
            }
        }
    }

    #[test]
    fn matches_exhaustive_more_often_than_greedy() {
        // Swap moves must recover at least every optimum greedy already
        // finds, and strictly more on some instances.
        let (mut greedy_hits, mut local_hits) = (0, 0);
        for seed in 0..30 {
            let p = random_problem(seed + 500, 3, 6);
            let s = Scenario::tradeoff_normalized(0.35);
            let x = solve_exhaustive(&p, s);
            if solve_greedy(&p, s).objective() <= x.objective() + 1e-12 {
                greedy_hits += 1;
            }
            if solve_local_search(&p, s).objective() <= x.objective() + 1e-12 {
                local_hits += 1;
            }
        }
        assert!(local_hits >= greedy_hits, "{local_hits} < {greedy_hits}");
        assert!(local_hits >= 25, "local search optimal on {local_hits}/30");
    }

    #[test]
    fn reported_evaluation_is_reproducible() {
        for seed in 0..10 {
            let p = random_problem(seed + 40, 4, 6);
            let o = solve_local_search(&p, Scenario::tradeoff_normalized(0.6));
            assert_eq!(o.evaluation, p.evaluate(&o.evaluation.selection));
            assert_eq!(o.solver, SolverKind::LocalSearch);
        }
    }

    #[test]
    fn zero_move_budget_returns_greedy_fill() {
        let p = paper_like_problem();
        let s = Scenario::budget(p.baseline().cost() + Money::from_dollars(1));
        let bounded = solve_local_search_bounded(&p, s, 0);
        let greedy = solve_greedy(&p, s);
        assert_eq!(bounded.evaluation, greedy.evaluation);
    }

    #[test]
    fn improve_repairs_an_overfull_selection() {
        // Start from everything selected under a tight budget: flip-off /
        // swap moves must walk back to feasibility when possible.
        let p = paper_like_problem();
        let baseline = p.baseline();
        let s = Scenario::budget(baseline.cost() + Money::from_cents(50));
        let mut ev = IncrementalEvaluator::new(&p);
        for k in 0..p.len() {
            ev.flip(k);
        }
        let start = ev.snapshot();
        let end = improve(&mut ev, s, &baseline, 32);
        assert!(scenario_not_worse(s, &end, &start, &baseline));
        assert!(s.feasible(&end), "improvement pass failed to repair");
    }

    fn scenario_not_worse(
        s: Scenario,
        a: &Evaluation,
        b: &Evaluation,
        baseline: &Evaluation,
    ) -> bool {
        !s.better(b, a, baseline)
    }

    #[test]
    fn joint_pass_with_neutral_placements_matches_improve_exactly() {
        // Both pools charging identically: no placement move can ever
        // improve, so the joint pass must land on improve()'s selection
        // bit-for-bit and leave every placement untouched.
        for seed in 0..10 {
            let p = random_problem(seed + 90, 4, 7);
            let baseline = p.baseline();
            let s = Scenario::tradeoff_normalized(0.4);
            let mut plain_ev = IncrementalEvaluator::new(&p);
            let plain = improve(&mut plain_ev, s, &baseline, 32);
            let mut joint_ev = IncrementalEvaluator::new(&p);
            let mut placements = vec![Placement::Reserved; p.len()];
            let charge_for = |k: usize, _p: Placement| p.candidates()[k].clone();
            let joint = improve_joint(
                &mut joint_ev,
                s,
                &baseline,
                32,
                &mut placements,
                &charge_for,
            );
            assert_eq!(plain, joint, "seed {seed}");
            assert!(placements.iter().all(|&pl| pl == Placement::Reserved));
        }
    }

    #[test]
    fn placement_flip_moves_a_view_to_the_cheaper_pool() {
        // Spot charges half the build/refresh hours: the joint pass
        // should place selected views on spot, through O(1) splices,
        // and the result must reproduce on a mirror problem holding the
        // spot-priced charges. Multi-hour charges, so the differential
        // survives AWS whole-hour rounding.
        let pricing = mv_pricing::presets::aws_2012();
        let instance = pricing.compute.instance("small").unwrap().clone();
        let mut q =
            mv_cost::QueryCharge::new("Q", mv_units::Gb::new(0.01), mv_units::Hours::new(10.0));
        q.frequency = 5.0;
        let model = mv_cost::CloudCostModel::new(mv_cost::CostContext {
            pricing,
            instance,
            nb_instances: 1,
            months: mv_units::Months::new(1.0),
            dataset_size: mv_units::Gb::new(10.0),
            inserts: vec![],
            workload: vec![q],
        });
        let p = SelectionProblem::new(
            model,
            vec![mv_cost::ViewCharge::new(
                "spec-Q",
                mv_units::Gb::new(1.0),
                mv_units::Hours::new(8.0),
                mv_units::Hours::new(2.0),
                1,
            )
            .answers(0, mv_units::Hours::new(0.5))],
        );
        let baseline = p.baseline();
        let s = Scenario::tradeoff(0.02);
        let charge_for = |k: usize, place: Placement| -> mv_cost::ViewCharge {
            let base = &p.candidates()[k];
            let mut c = match place {
                Placement::Reserved => base.clone(),
                Placement::Spot => mv_cost::ViewCharge {
                    materialization: base.materialization * 0.5,
                    maintenance: base.maintenance * 0.5,
                    ..base.clone()
                },
            };
            c.placement = place;
            c
        };
        let mut ev = IncrementalEvaluator::from_problem(p.clone());
        let mut placements = vec![Placement::Reserved; p.len()];
        let counters = mv_obs::CounterGuard::scoped();
        let end = improve_joint(&mut ev, s, &baseline, 64, &mut placements, &charge_for);
        assert_eq!(
            counters.delta(mv_obs::Counter::EvaluatorBuild),
            0,
            "placement flips must splice, not rebuild"
        );
        drop(counters);
        // Whatever got selected ended up on the half-price pool.
        let any_selected = end.selection.count_ones() > 0;
        assert!(any_selected);
        for k in end.selection.ones() {
            assert_eq!(placements[k], Placement::Spot, "view {k}");
        }
        // The end state reproduces on an equivalent static problem.
        let mirror_charges: Vec<mv_cost::ViewCharge> =
            (0..p.len()).map(|k| charge_for(k, placements[k])).collect();
        let mirror = SelectionProblem::new(p.model().clone(), mirror_charges);
        assert_eq!(end, mirror.evaluate(&end.selection));
    }
}
