//! The paper's three objective functions (Section 5.1).

use mv_units::{Hours, Money};
use serde::{Deserialize, Serialize};

use crate::Evaluation;

/// An optimization scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// MV1 (Formula 13): minimize `TprocessingQ` subject to `C ≤ budget`.
    Mv1 {
        /// The financial budget `Bl`.
        budget: Money,
    },
    /// MV2 (Formula 14): minimize `C` subject to `TprocessingQ ≤ limit`.
    Mv2 {
        /// The response-time limit `Tl`.
        time_limit: Hours,
    },
    /// MV3 (Formula 15): minimize `α·T + (1−α)·C`, unconstrained.
    Mv3 {
        /// Weight on processing time (`1−α` weights cost).
        alpha: f64,
        /// When `true`, `T` and `C` are divided by their no-view baselines
        /// before weighting, making the two terms commensurable. The paper
        /// mixes raw hours and dollars (`false`); both are supported and
        /// compared in the ablation benches.
        normalize: bool,
    },
}

impl Scenario {
    /// MV1 constructor.
    pub fn budget(budget: Money) -> Self {
        Scenario::Mv1 { budget }
    }

    /// MV2 constructor.
    pub fn time_limit(time_limit: Hours) -> Self {
        Scenario::Mv2 { time_limit }
    }

    /// MV3 constructor (paper-style raw mixing).
    pub fn tradeoff(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        Scenario::Mv3 {
            alpha,
            normalize: false,
        }
    }

    /// MV3 constructor with baseline normalization.
    pub fn tradeoff_normalized(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        Scenario::Mv3 {
            alpha,
            normalize: true,
        }
    }

    /// Whether `e` satisfies the scenario's constraint.
    pub fn feasible(&self, e: &Evaluation) -> bool {
        match self {
            Scenario::Mv1 { budget } => e.cost() <= *budget,
            Scenario::Mv2 { time_limit } => e.time <= *time_limit,
            Scenario::Mv3 { .. } => true,
        }
    }

    /// Constraint violation magnitude, as a dimensionless number used only
    /// to rank infeasible solutions (0 when feasible).
    pub fn violation(&self, e: &Evaluation) -> f64 {
        match self {
            Scenario::Mv1 { budget } => (e.cost() - *budget).to_dollars_f64().max(0.0),
            Scenario::Mv2 { time_limit } => (e.time.value() - time_limit.value()).max(0.0),
            Scenario::Mv3 { .. } => 0.0,
        }
    }

    /// The scenario's objective value for `e`, lower = better. `baseline`
    /// supplies the normalization denominators for MV3.
    pub fn objective(&self, e: &Evaluation, baseline: &Evaluation) -> f64 {
        match self {
            Scenario::Mv1 { .. } => e.time.value(),
            Scenario::Mv2 { .. } => e.cost().to_dollars_f64(),
            Scenario::Mv3 { alpha, normalize } => {
                let (t, c) = if *normalize {
                    (
                        e.time.value() / baseline.time.value().max(f64::MIN_POSITIVE),
                        e.cost().to_dollars_f64()
                            / baseline
                                .cost()
                                .to_dollars_f64()
                                .abs()
                                .max(f64::MIN_POSITIVE),
                    )
                } else {
                    (e.time.value(), e.cost().to_dollars_f64())
                };
                alpha * t + (1.0 - alpha) * c
            }
        }
    }

    /// `true` when `a` is strictly better than `b`: feasibility first, then
    /// smaller violation, then smaller objective, then (tie-break) smaller
    /// cost and time.
    pub fn better(&self, a: &Evaluation, b: &Evaluation, baseline: &Evaluation) -> bool {
        let (fa, fb) = (self.feasible(a), self.feasible(b));
        if fa != fb {
            return fa;
        }
        if !fa {
            let (va, vb) = (self.violation(a), self.violation(b));
            if va != vb {
                return va < vb;
            }
        }
        let (oa, ob) = (self.objective(a, baseline), self.objective(b, baseline));
        if oa != ob {
            return oa < ob;
        }
        if a.cost() != b.cost() {
            return a.cost() < b.cost();
        }
        a.time < b.time
    }

    /// Short label for reports (`"MV1"`, `"MV2"`, `"MV3"`).
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Mv1 { .. } => "MV1",
            Scenario::Mv2 { .. } => "MV2",
            Scenario::Mv3 { .. } => "MV3",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_like_problem;

    #[test]
    fn feasibility_and_violation() {
        let p = paper_like_problem();
        let base = p.baseline();
        let tight = Scenario::budget(base.cost() - Money::from_dollars(1));
        assert!(!tight.feasible(&base));
        assert!(tight.violation(&base) > 0.0);
        let loose = Scenario::budget(base.cost() + Money::from_dollars(1));
        assert!(loose.feasible(&base));
        assert_eq!(loose.violation(&base), 0.0);

        let t = Scenario::time_limit(base.time);
        assert!(t.feasible(&base));
        assert!(Scenario::tradeoff(0.5).feasible(&base));
    }

    #[test]
    fn objective_directions() {
        let p = paper_like_problem();
        let base = p.baseline();
        let all = p.evaluate(&mv_cost::SelectionSet::full(p.len()));
        // MV1 objective = time: all views is better.
        assert!(
            Scenario::budget(Money::MAX).objective(&all, &base)
                < Scenario::budget(Money::MAX).objective(&base, &base)
        );
        // MV3 normalized baseline objective = alpha·1 + (1-alpha)·1 = 1.
        let mv3 = Scenario::tradeoff_normalized(0.3);
        assert!((mv3.objective(&base, &base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn better_prefers_feasible_then_objective() {
        let p = paper_like_problem();
        let base = p.baseline();
        let all = p.evaluate(&mv_cost::SelectionSet::full(p.len()));
        let s = Scenario::budget(Money::MAX);
        assert!(s.better(&all, &base, &base)); // faster, both feasible
        assert!(!s.better(&base, &all, &base));
        // Infeasible vs feasible.
        let tight = Scenario::budget(Money::ZERO);
        // Both infeasible: smaller violation wins.
        let cheaper = if all.cost() < base.cost() {
            &all
        } else {
            &base
        };
        let dearer = if all.cost() < base.cost() {
            &base
        } else {
            &all
        };
        assert!(tight.better(cheaper, dearer, &base));
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn alpha_out_of_range_panics() {
        Scenario::tradeoff(1.5);
    }

    #[test]
    fn labels() {
        assert_eq!(Scenario::budget(Money::ZERO).label(), "MV1");
        assert_eq!(Scenario::time_limit(Hours::ZERO).label(), "MV2");
        assert_eq!(Scenario::tradeoff(0.5).label(), "MV3");
    }
}
