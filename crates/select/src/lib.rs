//! The view-selection optimizer (the paper's Section 5).
//!
//! Three objective functions over the cost models of `mv-cost`:
//!
//! * **MV1** — minimize workload processing time under a budget;
//! * **MV2** — minimize monetary cost under a response-time limit;
//! * **MV3** — minimize the α-weighted combination of both.
//!
//! Four solvers: the paper's dynamic-programming 0/1 knapsack
//! ([`solve_knapsack`]), exhaustive enumeration ([`solve_exhaustive`],
//! ground truth), greedy hill climbing ([`solve_greedy`]) and
//! branch-and-bound ([`solve_bnb`]). All evaluate selections under the
//! *true* interaction model — each query uses its fastest selected view —
//! so solver quality can be compared honestly (DESIGN.md ablation A1).
//!
//! ```
//! use mv_select::{fixtures, Scenario};
//! use mv_units::Money;
//!
//! let problem = fixtures::paper_like_problem();
//! let budget = problem.baseline().cost() + Money::from_cents(50);
//! let outcome = mv_select::solve_knapsack(&problem, Scenario::budget(budget));
//! assert!(outcome.feasible());
//! assert!(outcome.evaluation.time <= outcome.baseline.time);
//! ```

mod bnb;
mod exhaustive;
pub mod fixtures;
mod greedy;
mod knapsack;
pub mod pareto;
mod problem;
mod scenario;
mod solution;

pub use bnb::{solve_bnb, solve_bnb_counted, BnbStats};
pub use exhaustive::{solve_exhaustive, MAX_CANDIDATES};
pub use greedy::solve_greedy;
pub use knapsack::solve_knapsack;
pub use problem::{Evaluation, SelectionProblem};
pub use scenario::Scenario;
pub use solution::{Outcome, SolverKind};

/// Dispatches to the solver named by `kind`.
pub fn solve(problem: &SelectionProblem, scenario: Scenario, kind: SolverKind) -> Outcome {
    match kind {
        SolverKind::PaperKnapsack => solve_knapsack(problem, scenario),
        SolverKind::Exhaustive => solve_exhaustive(problem, scenario),
        SolverKind::Greedy => solve_greedy(problem, scenario),
        SolverKind::BranchAndBound => solve_bnb(problem, scenario),
    }
}
