//! The view-selection optimizer (the paper's Section 5).
//!
//! Three objective functions over the cost models of `mv-cost`:
//!
//! * **MV1** — minimize workload processing time under a budget;
//! * **MV2** — minimize monetary cost under a response-time limit;
//! * **MV3** — minimize the α-weighted combination of both.
//!
//! Six solvers: the paper's dynamic-programming 0/1 knapsack
//! ([`solve_knapsack`]), exhaustive enumeration ([`solve_exhaustive`],
//! ground truth), greedy hill climbing ([`solve_greedy`]),
//! branch-and-bound ([`solve_bnb`]), flip/swap local search
//! ([`solve_local_search`], never worse than greedy by construction)
//! and large-neighborhood search ([`solve_lns`], the destroy-and-repair
//! tier for candidate pools where the O(n²) swap neighborhood stalls —
//! never worse than local search while its polish pass is on).
//! All evaluate selections under the *true* interaction model — each
//! query uses its fastest selected view — so solver quality can be
//! compared honestly (DESIGN.md ablation A1).
//!
//! # Evaluation architecture
//!
//! Selections are [`SelectionSet`] bitsets (copy-on-write `u64` words):
//! cloning one — which every probe and every [`Evaluation`] does — is an
//! atomic refcount bump instead of a `Vec<bool>` allocation.
//!
//! Every solver probes neighboring selections through the
//! [`IncrementalEvaluator`], which caches each query's fastest selected
//! view plus the runner-up over **sparse struct-of-arrays answer
//! tables**: the per-view answer lists live in one flat CSR arena
//! (parallel query-id/time vectors with a span per view), and the
//! per-query reverse index keeps only the [`ANSWER_TOP_K`] fastest
//! answerers, under the invariant that every answerer left outside a
//! table is at least as slow as everything inside it — so a table
//! rescan is exact whenever it finds anyone, and falls back to an exact
//! sweep of the selected views' spans only when a pruned table comes up
//! empty. Against n candidates and m workload queries, with `deg` the
//! number of queries a view answers:
//!
//! * `flip`/`unflip` — O(deg) (a runner-up rescan only when the flipped
//!   view was among a query's two fastest);
//! * `snapshot` — O(n + m), summing in the model's own fold orders and
//!   pricing through the model's own routines, so results are
//!   **bit-identical** to [`SelectionProblem::evaluate`] (property-tested
//!   in `tests/evaluator_matches.rs`, including random sparse profiles
//!   and dynamic add/remove/placement interleavings);
//! * a greedy pass is therefore O(n·(n + m)) instead of O(n²·m), and the
//!   exhaustive sweep O(2ⁿ·m) instead of O(2ⁿ·n·m) by walking masks in
//!   ascending order (amortized two flips per subset).
//!
//! The sparse layout is what scales the evaluator 100–1000× past the
//! paper's shape: at n = 2 000 candidates and m = 50 000 queries a
//! single-flip probe still answers in microseconds
//! (`crates/bench/benches/scale.rs`), where the historical dense
//! per-view `Vec<Option<Hours>>` representation alone would hold 10⁸
//! slots.
//!
//! The exhaustive and Pareto sweeps fan out across threads above
//! [`PARALLEL_THRESHOLD`] candidates: contiguous mask ranges per thread,
//! each with its own evaluator, merged in ascending chunk order so the
//! outcome (including tie-breaks) is identical to the serial sweep for
//! any thread count. At n = 20, m = 30 the evaluator answers single-flip
//! probes ≈ 6× faster than full re-evaluation (see
//! `crates/bench/benches/evaluator.rs`).
//!
//! # Large-neighborhood search
//!
//! The [`lns`] module is the solver tier for large pools:
//! destroy-and-repair rounds over the live evaluator, alternating
//! random and worst-charge destroy sets with a greedy repair restricted
//! to a benefit-ranked shortlist ([`LnsConfig`]). Rounds are accepted
//! only on strict improvement and rolled back flip-for-flip otherwise,
//! so with the polish pass enabled [`solve_lns`] is never worse than
//! [`solve_local_search`] from the same start
//! (`tests/lns_never_worse.rs`).
//!
//! # Streaming candidates
//!
//! The candidate pool itself is dynamic: the evaluator holds its problem
//! behind a clone-on-write handle, and
//! [`IncrementalEvaluator::add_candidate`] /
//! [`IncrementalEvaluator::remove_candidate`] splice views into and out
//! of the cached answer tables in O(m) — no rebuild — while
//! `snapshot()` stays bit-identical to a from-scratch
//! [`SelectionProblem::evaluate`] on the equivalent (grown or shrunk)
//! problem at every step. That is what lets `mvcloud`'s
//! `Advisor::solve_streaming` pull lattice candidates lazily from a
//! benefit-ordered `CandidateStream`, admit each through one O(m)
//! probe, repair with [`local_search`] moves, and retire dominated
//! candidates mid-search instead of materializing and measuring the
//! whole lattice up front. At n = 20, m = 30 an add + probe + retire
//! cycle runs ≈ 7× faster than rebuilding the problem and re-evaluating
//! (see `crates/bench/benches/candidate_churn.rs`).
//!
//! # Multi-epoch horizons
//!
//! The [`epoch`] module chains single-period problems into a billing
//! horizon with transition-aware charges: an [`EpochChain`] re-prices
//! each epoch's candidates by what the *previous* epoch materialized
//! (kept views pay maintenance only via [`mv_cost::ViewCharge::
//! carried`]; added views pay full materialization; dropped views
//! forfeit theirs), making the optimum path-dependent. Epoch
//! boundaries reuse the live evaluator —
//! [`IncrementalEvaluator::retarget`] swaps the costing model in O(m)
//! while the answer caches survive, and
//! [`IncrementalEvaluator::update_charge`] splices re-priced charges
//! in place — instead of rebuilding the problem per epoch
//! (`crates/bench/benches/horizon.rs` measures the difference;
//! [`EpochChain::solve_rebuilding`] is the bit-identical rebuild
//! reference). [`EpochChain::solve_myopic`] is the transition-blind
//! re-solve-every-period comparator the regression tests beat.
//!
//! Charges can additionally be re-priced per epoch:
//! [`EpochChain::solve_repriced`] passes every transition charge
//! through a caller-supplied transform on the same warm-started hot
//! path (this is how `mv-market` splices spot-interruption risk
//! premiums into the chain without this crate knowing about markets;
//! the identity transform *is* [`EpochChain::solve`]). For tiny pools,
//! [`EpochChain::solve_dp_exact`] is the finite-horizon DP oracle —
//! exact over selection states per epoch — that quantifies how far the
//! sequential chain sits from the true horizon optimum
//! (`tests/dp_oracle.rs`).
//!
//! # Mixed-fleet placement
//!
//! On a hedged fleet (part reserved, part spot capacity) each view
//! additionally carries a [`Placement`] deciding which pool its
//! build/refresh work bills against. [`EpochChain::solve_fleet`]
//! searches placements **jointly** with the selection: the improvement
//! pass ([`local_search::improve_joint`]) gains a placement-flip move
//! alongside select-flip/swap, and because the per-pool transform only
//! moves materialization/maintenance/size (never the answer profile),
//! every placement flip is one O(1) [`IncrementalEvaluator::
//! update_charge`] splice on the same live evaluator — measured ≈ 38×
//! faster than rebuilding the charged problem per probe
//! (`crates/bench/benches/fleet.rs`). Transition accounting extends
//! naturally: a view kept *on the same pool* is carried; a view moved
//! across pools re-pays materialization ([`EpochStep::moved`]).
//! [`EpochChain::solve_dp_fleet`] is the joint selection+placement DP
//! oracle (3ⁿ states per epoch, n ≤ [`DP_FLEET_MAX_CANDIDATES`]); on
//! the crunch fixture it exposes the chain's placement *lookahead*
//! gap — the DP pre-places a view on reserved capacity ahead of a
//! correlated interruption crunch the greedy chain only reacts to
//! (`tests/dp_oracle.rs`).
//!
//! # Scenario trees
//!
//! Monte-Carlo price sweeps share work across sampled paths: an
//! [`EpochTree`] is a prefix forest of per-node costing models (node =
//! one epoch under one quote, edge = an epoch transition; built by
//! `mv-market`'s `ScenarioTree` from the sampled quote paths), and
//! [`EpochChain::solve_tree`] / [`EpochChain::solve_tree_fleet`] solve
//! each tree **node** exactly once — one evaluator build per root, one
//! warm [`IncrementalEvaluator::retarget`] + charge splice per edge,
//! and one O(n + tables) [`IncrementalEvaluator::fork`] per extra
//! sibling at a split — instead of per path × epoch. Because a node's
//! search trajectory depends only on its model, its effective charges
//! and the selection it inherits (all shared along a prefix), the
//! per-leaf step sequences are **bit-identical** to solving each path
//! through [`EpochChain::solve_repriced`] / [`EpochChain::solve_fleet`]
//! on its own chain (proptest-pinned in `tests/tree_identity.rs` at the
//! driver layer); ready nodes are work-stolen across crossbeam threads.
//!
//! The same two warm primitives carry the resident advisor service
//! (`mvcloud::service`): a long-lived evaluator built **once** from the
//! persistent candidate catalog, [`IncrementalEvaluator::retarget`]ed
//! on every drift-triggered re-solve as live traffic shifts the
//! workload frequencies (counter-pinned rebuild-free), and
//! [`IncrementalEvaluator::fork`]ed per concurrent what-if probe for
//! snapshot isolation over the copy-on-write problem.
//! At K = 32 sampled paths the tree sweep beats the flat loop ≈ 1.2×
//! on a volatile spot market and ≈ 1.5× on a crunchy hedged fleet
//! (`crates/bench/benches/market.rs`, `fleet.rs`), compounding with the
//! dirty-delta `snapshot()` that makes every node probe O(deg).
//!
//! # Telemetry
//!
//! Every hot path above reports into the [`mv_obs`] registry —
//! off-by-default, one relaxed atomic load per site while disabled
//! (guarded in `crates/bench/benches/obs.rs` and
//! `evaluator/probe_telemetry_n16`). The instrumentation points:
//!
//! | site | counters | spans / histograms / events |
//! |---|---|---|
//! | [`IncrementalEvaluator`] build/retarget/fork | `evaluator/build`, `evaluator/retarget`, `evaluator/fork` | — |
//! | [`IncrementalEvaluator`] flip/unflip/snapshot | `evaluator/flip`, `evaluator/unflip`, `evaluator/snapshot` | `evaluator/snapshot_dirty_blocks` histogram (dirty-delta width) |
//! | [`IncrementalEvaluator::update_charge`] | `evaluator/update_charge`, `evaluator/update_charge_fast` | — |
//! | [`local_search`] probe loops | `search/probes`; accepted moves: `search/flip_moves`, `search/swap_moves`, `search/place_moves` | `placement_move` event per accepted pool move |
//! | [`lns`] refine rounds | `lns/rounds`, `lns/accepted`, `lns/rejected` | `lns/destroy_size` histogram, `lns_round` event |
//! | [`EpochChain`] epoch loops | `chain/epoch_steps` | `chain/epoch` span, `epoch_transition` event (added/kept/dropped/moved) |
//! | [`EpochTree`] node solves | `tree/node_solves`, `tree/root_solves` | `solve_tree/node` span (count ≡ tree nodes), `tree/fork_width` histogram, `tree_node_solve` event |
//!
//! Telemetry is *observational*: with the registry enabled, solver
//! output stays bit-identical (`tests/obs_identity.rs`), and counters
//! only move inside [`mv_obs::CounterGuard`]-style enabled windows.
//!
//! ```
//! use mv_select::{fixtures, Scenario};
//! use mv_units::Money;
//!
//! let problem = fixtures::paper_like_problem();
//! let budget = problem.baseline().cost() + Money::from_cents(50);
//! let outcome = mv_select::solve_knapsack(&problem, Scenario::budget(budget));
//! assert!(outcome.feasible());
//! assert!(outcome.evaluation.time <= outcome.baseline.time);
//! ```

mod bnb;
pub mod epoch;
mod evaluator;
mod exhaustive;
pub mod fixtures;
mod greedy;
mod knapsack;
pub mod lns;
pub mod local_search;
pub mod pareto;
mod problem;
mod scenario;
mod solution;
mod sweep;

pub use bnb::{solve_bnb, solve_bnb_counted, BnbStats};
pub use epoch::{
    DpFleetSolution, DpSolution, EpochChain, EpochStep, EpochTree, EpochTreeNode,
    DP_FLEET_MAX_CANDIDATES, DP_MAX_CANDIDATES,
};
pub use evaluator::{IncrementalEvaluator, ANSWER_TOP_K};
pub use exhaustive::{
    solve_exhaustive, solve_exhaustive_with_threads, MAX_CANDIDATES, PARALLEL_THRESHOLD,
};
pub use greedy::solve_greedy;
pub use knapsack::solve_knapsack;
pub use lns::{solve_lns, solve_lns_with, LnsConfig};
pub use local_search::{solve_local_search, solve_local_search_bounded};
pub use mv_cost::Placement;
pub use mv_cost::SelectionSet;
pub use problem::{Evaluation, SelectionProblem};
pub use scenario::Scenario;
pub use solution::{Outcome, SolverKind};

/// Dispatches to the solver named by `kind`.
pub fn solve(problem: &SelectionProblem, scenario: Scenario, kind: SolverKind) -> Outcome {
    match kind {
        SolverKind::PaperKnapsack => solve_knapsack(problem, scenario),
        SolverKind::Exhaustive => solve_exhaustive(problem, scenario),
        SolverKind::Greedy => solve_greedy(problem, scenario),
        SolverKind::BranchAndBound => solve_bnb(problem, scenario),
        SolverKind::LocalSearch => solve_local_search(problem, scenario),
        SolverKind::Lns => solve_lns(problem, scenario),
    }
}

/// [`solve`], but with any internal parallelism disabled. For callers
/// that already fan solves out across their own threads (e.g. the
/// what-if scenario sweeps): nesting two levels of
/// `available_parallelism()`-sized pools would oversubscribe the CPUs
/// quadratically. Results are identical to [`solve`].
pub fn solve_serial(problem: &SelectionProblem, scenario: Scenario, kind: SolverKind) -> Outcome {
    match kind {
        SolverKind::Exhaustive => solve_exhaustive_with_threads(problem, scenario, 1),
        _ => solve(problem, scenario, kind),
    }
}
