//! The paper's solver: 0/1 knapsack by dynamic programming (Section 5.2).
//!
//! The paper feeds per-view cost/benefit parameters into a knapsack and
//! solves it by dynamic programming. A knapsack needs *additive* items, so
//! each candidate is linearized to the `(time saved, cost delta)` of adding
//! it alone (see [`SelectionProblem::linearized_deltas`]); query overlap
//! between views makes the sum of deltas optimistic. Two deviations from a
//! textbook knapsack are therefore required for correctness:
//!
//! 1. **Dominant pre-selection** — views whose cost delta is ≤ 0 only relax
//!    the budget (their time saving is never negative), so they are
//!    selected before the DP runs and the capacity is adjusted;
//! 2. **Repair** — after the DP, the chosen set is re-evaluated under the
//!    true interaction model; while the true constraint is violated, the
//!    selected view with the worst benefit density is dropped. A final
//!    greedy top-up re-adds any view that still improves the objective
//!    within the constraint.
//!
//! Scaling: cost deltas are discretised to whole cents and time savings to
//! 0.36-second units (10⁻⁴ h); both resolutions are far below anything the
//! paper's inputs distinguish.

use mv_cost::SelectionSet;
use mv_units::{Hours, Money};

use crate::{Evaluation, IncrementalEvaluator, Outcome, Scenario, SelectionProblem, SolverKind};

/// Hours per value unit in both DPs.
const TIME_UNIT_HOURS: f64 = 1e-4;
/// Capacity ceiling: DP tables beyond this are summarily truncated (the
/// repair pass still guarantees a valid answer).
const MAX_TABLE: usize = 4_000_000;

fn to_cents(m: Money) -> i128 {
    m.micros() / 10_000
}

fn time_units(t: Hours) -> u64 {
    (t.value() / TIME_UNIT_HOURS).round() as u64
}

/// Solves `scenario` with the paper's knapsack formulation.
pub fn solve_knapsack(problem: &SelectionProblem, scenario: Scenario) -> Outcome {
    let baseline = problem.baseline();
    let deltas = problem.linearized_deltas();
    let n = problem.len();

    let mut selection = SelectionSet::empty(n);
    match scenario {
        Scenario::Mv1 { budget } => {
            // Pre-select cost-reducing views.
            for (k, (_, dcost)) in deltas.iter().enumerate() {
                if *dcost <= Money::ZERO {
                    selection.set(k, true);
                }
            }
            // DP over the rest.
            let pre_cost = problem.evaluate(&selection).cost();
            let capacity_cents = to_cents(budget - pre_cost).max(0);
            let items: Vec<(usize, u64, i128)> = deltas
                .iter()
                .enumerate()
                .filter(|(k, (_, dcost))| !selection.contains(*k) && *dcost > Money::ZERO)
                .map(|(k, (saved, dcost))| (k, time_units(*saved), to_cents(*dcost).max(1)))
                .collect();
            for k in dp_max_value(&items, capacity_cents) {
                selection.set(k, true);
            }
        }
        Scenario::Mv2 { time_limit } => {
            let need = baseline.time.saturating_sub(time_limit);
            let items: Vec<(usize, u64, i128)> = deltas
                .iter()
                .enumerate()
                .map(|(k, (saved, dcost))| (k, time_units(*saved), to_cents(*dcost)))
                .collect();
            for k in dp_min_cost(&items, time_units(need)) {
                selection.set(k, true);
            }
        }
        Scenario::Mv3 { alpha, normalize } => {
            // Linearized weighted deltas: include iff the weighted delta is
            // negative.
            let (t0, c0) = if normalize {
                (
                    baseline.time.value().max(f64::MIN_POSITIVE),
                    baseline
                        .cost()
                        .to_dollars_f64()
                        .abs()
                        .max(f64::MIN_POSITIVE),
                )
            } else {
                (1.0, 1.0)
            };
            for (k, (saved, dcost)) in deltas.iter().enumerate() {
                let w = alpha * (-saved.value()) / t0 + (1.0 - alpha) * dcost.to_dollars_f64() / c0;
                if w < 0.0 {
                    selection.set(k, true);
                }
            }
        }
    }

    // Repair against the true evaluation.
    repair(problem, scenario, &mut selection);
    let mut evaluation = problem.evaluate(&selection);
    // "Materialize nothing" is always available: never return worse.
    if scenario.better(&baseline, &evaluation, &baseline) {
        evaluation = baseline.clone();
    }
    Outcome::new(evaluation, baseline, scenario, SolverKind::PaperKnapsack)
}

/// Classic maximize-value DP: items are `(id, value, weight>0)`, capacity
/// in the same weight units. Returns the chosen ids.
fn dp_max_value(items: &[(usize, u64, i128)], capacity: i128) -> Vec<usize> {
    if capacity <= 0 || items.is_empty() {
        return Vec::new();
    }
    let cap = (capacity as usize).min(MAX_TABLE);
    // dp[w] = best value with weight ≤ w; keep[i][w] records choices.
    let mut dp = vec![0u64; cap + 1];
    let mut keep = vec![false; items.len() * (cap + 1)];
    for (i, (_, value, weight)) in items.iter().enumerate() {
        let w_item = (*weight).min(i128::from(u32::MAX)) as usize;
        if w_item > cap {
            continue;
        }
        for w in (w_item..=cap).rev() {
            let candidate = dp[w - w_item] + value;
            if candidate > dp[w] {
                dp[w] = candidate;
                keep[i * (cap + 1) + w] = true;
            }
        }
    }
    // Walk back.
    let mut chosen = Vec::new();
    let mut w = cap;
    for i in (0..items.len()).rev() {
        if keep[i * (cap + 1) + w] {
            chosen.push(items[i].0);
            w -= items[i].2 as usize;
        }
    }
    chosen
}

/// Dual DP: minimize total weight (cost cents, possibly negative) subject
/// to total value (time units) ≥ `target`. Items are `(id, value,
/// weight)`. Returns the chosen ids.
fn dp_min_cost(items: &[(usize, u64, i128)], target: u64) -> Vec<usize> {
    if target == 0 {
        // Constraint already satisfied: take every cost-reducing item.
        return items
            .iter()
            .filter(|(_, _, w)| *w < 0)
            .map(|(id, _, _)| *id)
            .collect();
    }
    let t = (target as usize).min(MAX_TABLE);
    const INF: i128 = i128::MAX / 4;
    // dp[s] = min cost achieving saving ≥ s (s capped at t).
    let mut dp = vec![INF; t + 1];
    dp[0] = 0;
    let mut keep = vec![false; items.len() * (t + 1)];
    for (i, (_, value, weight)) in items.iter().enumerate() {
        let v = (*value as usize).min(t);
        for s in (0..=t).rev() {
            let from = s.saturating_sub(v);
            if dp[from] < INF {
                let candidate = dp[from] + weight;
                if candidate < dp[s] {
                    dp[s] = candidate;
                    keep[i * (t + 1) + s] = true;
                }
            }
        }
    }
    if dp[t] >= INF {
        // Even all items cannot reach the target; select everything with a
        // positive saving and let the repair pass sort it out.
        return items
            .iter()
            .filter(|(_, v, _)| *v > 0)
            .map(|(id, _, _)| *id)
            .collect();
    }
    let mut chosen = Vec::new();
    let mut s = t;
    for i in (0..items.len()).rev() {
        if keep[i * (t + 1) + s] {
            chosen.push(items[i].0);
            s = s.saturating_sub((items[i].1 as usize).min(t));
        }
    }
    chosen
}

/// Repairs a linearized solution against the true evaluation with
/// single-bit local search:
///
/// 1. while the true constraint is violated, apply the single flip (on or
///    off) that most reduces the violation — under MV1 that usually sheds
///    storage-heavy views, under MV2 it *adds* time-saving ones;
/// 2. hill-climb on the true scenario ordering with both flip directions
///    until a local optimum.
///
/// Each accepted move strictly improves the `(feasible, violation,
/// objective)` ordering over a finite space, so the search terminates; a
/// defensive iteration cap bounds it regardless. All probes run through
/// the [`IncrementalEvaluator`], so a repair round costs O(n·(n + m))
/// instead of O(n²·m).
fn repair(problem: &SelectionProblem, scenario: Scenario, selection: &mut SelectionSet) {
    let baseline = problem.baseline();
    let n = selection.len();
    let max_moves = 4 * n + 8;
    let mut ev = IncrementalEvaluator::with_selection(problem, selection);

    // Phase 1: restore feasibility.
    for _ in 0..max_moves {
        let current = ev.snapshot();
        if scenario.feasible(&current) {
            break;
        }
        let mut best: Option<(usize, f64)> = None;
        for k in 0..n {
            ev.toggle(k);
            let e = ev.snapshot();
            ev.toggle(k);
            let v = scenario.violation(&e);
            if v < scenario.violation(&current) {
                let replace = match best {
                    None => true,
                    Some((_, bv)) => v < bv,
                };
                if replace {
                    best = Some((k, v));
                }
            }
        }
        match best {
            Some((k, _)) => ev.toggle(k),
            None => break, // no flip reduces the violation
        }
    }

    // Phase 2: hill-climb the true objective within feasibility.
    for _ in 0..max_moves {
        let current = ev.snapshot();
        let mut best_flip: Option<(usize, Evaluation)> = None;
        for k in 0..n {
            ev.toggle(k);
            let e = ev.snapshot();
            ev.toggle(k);
            if scenario.better(&e, &current, &baseline) {
                let replace = match &best_flip {
                    None => true,
                    Some((_, cur_best)) => scenario.better(&e, cur_best, &baseline),
                };
                if replace {
                    best_flip = Some((k, e));
                }
            }
        }
        match best_flip {
            Some((k, _)) => ev.toggle(k),
            None => break,
        }
    }

    *selection = ev.selection().clone();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::solve_exhaustive;
    use crate::fixtures::{paper_like_problem, random_problem};

    #[test]
    fn respects_budget_constraint() {
        let p = paper_like_problem();
        let base_cost = p.baseline().cost();
        for extra_cents in [5i64, 20, 100, 1_000] {
            let budget = base_cost + Money::from_cents(extra_cents);
            let o = solve_knapsack(&p, Scenario::budget(budget));
            assert!(o.feasible(), "budget +{extra_cents}c");
            assert!(o.evaluation.cost() <= budget);
        }
    }

    #[test]
    fn respects_time_constraint_when_reachable() {
        let p = paper_like_problem();
        let fastest = p.evaluate(&SelectionSet::full(p.len())).time;
        let limit = Hours::new(fastest.value() * 1.5);
        let o = solve_knapsack(&p, Scenario::time_limit(limit));
        assert!(o.feasible());
        assert!(o.evaluation.time <= limit);
    }

    #[test]
    fn matches_exhaustive_on_paper_like_problem() {
        let p = paper_like_problem();
        let base_cost = p.baseline().cost();
        let scenarios = [
            Scenario::budget(base_cost + Money::from_cents(50)),
            Scenario::time_limit(Hours::new(0.2)),
            Scenario::tradeoff(0.3),
            Scenario::tradeoff(0.7),
            Scenario::tradeoff_normalized(0.5),
        ];
        for s in scenarios {
            let k = solve_knapsack(&p, s);
            let x = solve_exhaustive(&p, s);
            // The knapsack must be feasible whenever the optimum is, and
            // within 10% of the optimal objective (linearization slack).
            assert_eq!(k.feasible(), x.feasible(), "{s:?}");
            if x.feasible() {
                let (ko, xo) = (k.objective(), x.objective());
                assert!(
                    ko <= xo * 1.10 + 1e-9,
                    "{s:?}: knapsack {ko} vs exhaustive {xo}"
                );
            }
        }
    }

    #[test]
    fn never_worse_than_baseline_for_mv3() {
        for seed in 0..20 {
            let p = random_problem(seed, 4, 6);
            let o = solve_knapsack(&p, Scenario::tradeoff_normalized(0.5));
            let base_obj = o.scenario.objective(&o.baseline, &o.baseline);
            assert!(
                o.objective() <= base_obj + 1e-9,
                "seed {seed}: {} > {base_obj}",
                o.objective()
            );
        }
    }

    #[test]
    fn dp_max_value_basics() {
        // Two items, capacity fits only the denser one.
        let items = vec![(0usize, 10u64, 5i128), (1usize, 7u64, 3i128)];
        assert_eq!(dp_max_value(&items, 4), vec![1]);
        assert_eq!(dp_max_value(&items, 8), vec![1, 0]);
        assert!(dp_max_value(&items, 0).is_empty());
        assert!(dp_max_value(&[], 10).is_empty());
    }

    #[test]
    fn dp_min_cost_basics() {
        // Reach saving 10 at min cost: item1 (save 10, cost 7) vs
        // items 0+2 (save 6+4, cost 3+3=6).
        let items = vec![
            (0usize, 6u64, 3i128),
            (1usize, 10u64, 7i128),
            (2usize, 4u64, 3i128),
        ];
        let mut chosen = dp_min_cost(&items, 10);
        chosen.sort();
        assert_eq!(chosen, vec![0, 2]);
        // Unreachable target falls back to all useful items.
        let mut all = dp_min_cost(&items, 1_000);
        all.sort();
        assert_eq!(all, vec![0, 1, 2]);
        // Zero target returns only cost-negative items (none here).
        assert!(dp_min_cost(&items, 0).is_empty());
    }
}
