//! Multi-epoch selection: a billing horizon as a chain of linked
//! per-epoch problems with transition-aware charges.
//!
//! The paper prices one billing period with a fixed workload. Real
//! deployments re-bill every period while the workload drifts, and the
//! periods are *not* independent: a view kept across an epoch boundary
//! pays maintenance and storage only (its materialization is sunk), a
//! newly added view pays full materialization, and a dropped view
//! forfeits what was spent building it. [`EpochChain`] threads that
//! state through a sequence of [`CloudCostModel`]s over one shared
//! candidate pool:
//!
//! * **Transition-aware charges** — at each epoch boundary the
//!   candidates selected in the previous epoch are re-priced to their
//!   [`ViewCharge::carried`] form (materialization zeroed), everything
//!   else reverts to full price. The per-epoch optimum therefore
//!   depends on the path taken to reach it, and re-solving each epoch
//!   from scratch against full prices ([`EpochChain::solve_myopic`]) is
//!   suboptimal — it churns views and re-pays materializations the
//!   chain knows are sunk (pinned by `chain_beats_myopic_churn` below
//!   and the `tests/horizon.rs` regression).
//! * **Warm starts, not rebuilds** — one [`IncrementalEvaluator`] lives
//!   for the whole horizon. Epoch boundaries cost one
//!   [`IncrementalEvaluator::retarget`] (O(m) context switch: the
//!   per-query answer caches survive because they hold only candidate
//!   answer times) plus an [`IncrementalEvaluator::update_charge`]
//!   splice per candidate whose carried state flipped — instead of an
//!   O(n·m) problem rebuild plus O(n) repositioning flips per epoch.
//!   [`EpochChain::solve_rebuilding`] is the rebuild-per-epoch
//!   reference implementation: bit-identical outcomes (tested), only
//!   slower (`crates/bench/benches/horizon.rs`).
//!
//! Each epoch is solved with the same move rules as
//! [`crate::solve_local_search`]: epoch 0 greedy-fills from empty, and
//! every epoch runs a bounded best-improvement flip/swap pass — from
//! the previous epoch's selection, so with zero drift the chain simply
//! confirms the standing selection is still a local optimum (one probe
//! round) instead of re-deriving it.
//!
//! **Scenario caveat (MV1):** under a budget constraint, carried
//! materialization discounts free up budget headroom, so later epochs
//! can legitimately afford views the single-period solve could not —
//! the chain's per-epoch selection is then *not* expected to equal the
//! single-period selection even with zero drift. MV2 and MV3 have no
//! such headroom effect: hour rounding makes the marginal cost of a
//! new view at least what it was in the single-period problem, so a
//! zero-drift horizon reproduces the single-period solve bit-for-bit
//! (property-tested in `tests/horizon_consistency.rs`).

use mv_cost::{CloudCostModel, CostBreakdown, Placement, SelectionSet, ViewCharge};
use mv_units::{Hours, Money};

use crate::{
    local_search, Evaluation, IncrementalEvaluator, Outcome, Scenario, SelectionProblem, SolverKind,
};

/// One epoch of a solved chain: the transition-aware outcome plus the
/// carry-over accounting that produced it.
#[derive(Debug, Clone)]
pub struct EpochStep {
    /// The chosen selection under the epoch's *charged* problem —
    /// carried views contribute no materialization. Its baseline is the
    /// epoch's no-view evaluation (identical under charged and full
    /// prices: the empty selection materializes nothing).
    pub outcome: Outcome,
    /// The same selection evaluated at full price (as if this epoch
    /// stood alone) — the single-period reference the zero-drift
    /// property test compares bit-for-bit.
    pub full_price: Evaluation,
    /// Candidates newly materialized this epoch (they pay full
    /// materialization in `outcome`).
    pub added: Vec<usize>,
    /// Candidates carried over from the previous epoch's selection
    /// (maintenance + storage only; same pool as before).
    pub kept: Vec<usize>,
    /// Candidates selected in the previous epoch but not in this one
    /// (their build cost is forfeited).
    pub dropped: Vec<usize>,
    /// Candidates selected in both epochs but *moved* to the other
    /// fleet pool at this boundary — a move rebuilds the view on the
    /// new pool's capacity, so they re-pay materialization like
    /// `added`. Always empty outside the fleet solvers.
    pub moved: Vec<usize>,
    /// The standing per-candidate pool assignment at the end of this
    /// epoch (single-fleet solvers record each pool charge's own
    /// placement). Only the selected entries carry billing meaning;
    /// unselected entries are sticky search state.
    pub placements: Vec<Placement>,
}

impl EpochStep {
    /// The epoch's charged selection.
    pub fn selection(&self) -> &SelectionSet {
        &self.outcome.evaluation.selection
    }
}

/// Total charged cost of a solved horizon (the number a bill payer
/// compares across policies).
pub fn horizon_cost(steps: &[EpochStep]) -> Money {
    steps.iter().map(|s| s.outcome.evaluation.cost()).sum()
}

/// Total frequency-weighted processing time across a solved horizon.
pub fn horizon_time(steps: &[EpochStep]) -> Hours {
    steps.iter().map(|s| s.outcome.evaluation.time).sum()
}

/// Hard cap on the pool size [`EpochChain::solve_dp_exact`] accepts:
/// the DP's state space is 2ⁿ per epoch and its transition relation 4ⁿ
/// per boundary, so it is an oracle for tiny pools only.
pub const DP_MAX_CANDIDATES: usize = 12;

/// The exact finite-horizon optimum found by
/// [`EpochChain::solve_dp_exact`].
#[derive(Debug, Clone)]
pub struct DpSolution {
    /// The optimal selection per epoch.
    pub selections: Vec<SelectionSet>,
    /// The charged (transition-aware) evaluation of each epoch's
    /// selection along the optimal trajectory, re-derived through
    /// [`SelectionProblem::evaluate`] so it reproduces externally.
    pub evaluations: Vec<Evaluation>,
    /// Total constraint violation along the trajectory (0 when every
    /// epoch is feasible).
    pub total_violation: f64,
    /// Total scenario objective along the trajectory — the number the
    /// sequential chain's optimality gap is measured against.
    pub total_objective: f64,
}

impl DpSolution {
    /// Total charged cost of the optimal trajectory.
    pub fn total_cost(&self) -> Money {
        self.evaluations.iter().map(|e| e.cost()).sum()
    }
}

/// Hard cap on the pool size [`EpochChain::solve_dp_fleet`] accepts:
/// the joint state space is 3ⁿ per epoch (unselected /
/// selected-reserved / selected-spot per candidate) and the transition
/// relation 9ⁿ per boundary — tighter than the selection-only DP's cap.
pub const DP_FLEET_MAX_CANDIDATES: usize = 6;

/// The exact joint selection+placement optimum found by
/// [`EpochChain::solve_dp_fleet`].
#[derive(Debug, Clone)]
pub struct DpFleetSolution {
    /// The optimal selection per epoch.
    pub selections: Vec<SelectionSet>,
    /// The optimal placement assignment per epoch (unselected
    /// candidates are reported at the canonical
    /// [`Placement::Reserved`]; only selected entries carry meaning).
    pub placements: Vec<Vec<Placement>>,
    /// The charged evaluation of each epoch along the optimal
    /// trajectory, re-derived through [`SelectionProblem::evaluate`]
    /// so it reproduces externally.
    pub evaluations: Vec<Evaluation>,
    /// Total constraint violation along the trajectory.
    pub total_violation: f64,
    /// Total scenario objective along the trajectory.
    pub total_objective: f64,
}

impl DpFleetSolution {
    /// Total charged cost of the optimal trajectory.
    pub fn total_cost(&self) -> Money {
        self.evaluations.iter().map(|e| e.cost()).sum()
    }
}

/// A billing horizon: per-epoch costing models over one shared,
/// full-price candidate pool.
///
/// Every epoch model must cover the same query universe (same workload
/// length; frequencies, base times, pricing and storage horizon are
/// free to differ per epoch) so the pool's answer profiles stay aligned
/// throughout — that is also what makes the warm-started evaluator's
/// caches valid across [`IncrementalEvaluator::retarget`].
#[derive(Debug, Clone)]
pub struct EpochChain {
    epochs: Vec<CloudCostModel>,
    pool: Vec<ViewCharge>,
}

impl EpochChain {
    /// Builds a chain, validating epoch/pool alignment.
    pub fn new(epochs: Vec<CloudCostModel>, pool: Vec<ViewCharge>) -> Self {
        assert!(!epochs.is_empty(), "a horizon needs at least one epoch");
        let m = epochs[0].context().workload.len();
        for (e, model) in epochs.iter().enumerate() {
            assert_eq!(
                model.context().workload.len(),
                m,
                "epoch {e} has a different workload length"
            );
        }
        for c in &pool {
            assert_eq!(
                c.profile.workload_len(),
                m,
                "candidate {} has {} query times for a {}-query workload",
                c.name,
                c.profile.workload_len(),
                m
            );
        }
        EpochChain { epochs, pool }
    }

    /// Number of epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// `true` when the chain has no epochs (never constructible via
    /// [`EpochChain::new`], which rejects empty horizons).
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The per-epoch costing models.
    pub fn epochs(&self) -> &[CloudCostModel] {
        &self.epochs
    }

    /// The shared full-price candidate pool.
    pub fn pool(&self) -> &[ViewCharge] {
        &self.pool
    }

    /// Solves the horizon transition-aware, warm-starting each epoch
    /// from the previous epoch's evaluator state. See the module docs
    /// for the mechanics; `max_moves` bounds the per-epoch improvement
    /// pass ([`EpochChain::solve`] uses the default budget).
    pub fn solve_bounded(&self, scenario: Scenario, max_moves: usize) -> Vec<EpochStep> {
        self.solve_repriced_bounded(scenario, max_moves, &|_, _, charge| charge.clone())
    }

    /// [`EpochChain::solve_bounded`] with the default per-epoch move
    /// budget.
    pub fn solve(&self, scenario: Scenario) -> Vec<EpochStep> {
        self.solve_bounded(scenario, local_search::default_move_budget(self.pool.len()))
    }

    /// The generalized transition-aware solve: each epoch's effective
    /// charges pass through `reprice(epoch, candidate, transition)`
    /// first, where `transition` is already the carry-aware charge (the
    /// full-price pool entry, or its [`ViewCharge::carried`] form when
    /// the candidate survived the previous epoch). This is the
    /// price-dynamics hook: `mv-market` re-risks every candidate per
    /// epoch (interruption premiums on materialization/maintenance)
    /// without this module knowing anything about markets.
    ///
    /// The hot path is unchanged from [`EpochChain::solve_bounded`]
    /// (which is this method with the identity transform): one
    /// [`IncrementalEvaluator`] lives for the whole horizon, every
    /// boundary costs one [`IncrementalEvaluator::retarget`] plus an
    /// [`IncrementalEvaluator::update_charge`] splice per candidate
    /// whose effective charge actually changed — never a rebuild
    /// (asserted via `IncrementalEvaluator::build_count` in the market
    /// tests). Transforms that only move materialization/maintenance
    /// (the risk transform does exactly that) keep every splice on
    /// `update_charge`'s O(1) same-answer-profile fast path.
    pub fn solve_repriced_bounded<F>(
        &self,
        scenario: Scenario,
        max_moves: usize,
        reprice: &F,
    ) -> Vec<EpochStep>
    where
        F: Fn(usize, usize, &ViewCharge) -> ViewCharge,
    {
        let n = self.pool.len();
        let mut current: Vec<ViewCharge> = self
            .pool
            .iter()
            .enumerate()
            .map(|(k, c)| reprice(0, k, c))
            .collect();
        let mut ev = IncrementalEvaluator::from_problem(SelectionProblem::new(
            self.epochs[0].clone(),
            current.clone(),
        ));
        let mut prev = SelectionSet::empty(n);
        let mut steps = Vec::with_capacity(self.epochs.len());
        for (e, model) in self.epochs.iter().enumerate() {
            mv_obs::span!("chain/epoch");
            if e > 0 {
                // The whole epoch transition: an O(m) context switch
                // plus one splice per candidate whose effective charge
                // changed. No rebuild, no repositioning.
                ev.retarget(model.clone());
                for (k, slot) in current.iter_mut().enumerate() {
                    // Borrow the full-price transition charge; only a
                    // carried one needs constructing.
                    let transition: std::borrow::Cow<'_, ViewCharge> = if prev.contains(k) {
                        std::borrow::Cow::Owned(self.pool[k].carried())
                    } else {
                        std::borrow::Cow::Borrowed(&self.pool[k])
                    };
                    let want = reprice(e, k, transition.as_ref());
                    if want != *slot {
                        ev.update_charge(k, want.clone());
                        *slot = want;
                    }
                }
            }
            let baseline = ev.problem().baseline();
            if e == 0 {
                local_search::greedy_fill(&mut ev, scenario, &baseline);
            }
            let evaluation = local_search::improve(&mut ev, scenario, &baseline, max_moves);
            steps.push(self.step(model, e, evaluation, baseline, &prev, scenario));
            prev = steps.last().expect("just pushed").selection().clone();
        }
        steps
    }

    /// [`EpochChain::solve_repriced_bounded`] with the default budget.
    pub fn solve_repriced<F>(&self, scenario: Scenario, reprice: &F) -> Vec<EpochStep>
    where
        F: Fn(usize, usize, &ViewCharge) -> ViewCharge,
    {
        self.solve_repriced_bounded(
            scenario,
            local_search::default_move_budget(self.pool.len()),
            reprice,
        )
    }

    /// The rebuild-per-epoch reference implementation of
    /// [`EpochChain::solve_repriced_bounded`]: identical transition and
    /// re-pricing semantics, but each epoch builds a fresh charged
    /// problem and a fresh evaluator repositioned by O(n) flips.
    /// Bit-identical steps (property-tested); exists as the correctness
    /// anchor and as the baseline the market bench measures against.
    pub fn solve_repriced_rebuilding_bounded<F>(
        &self,
        scenario: Scenario,
        max_moves: usize,
        reprice: &F,
    ) -> Vec<EpochStep>
    where
        F: Fn(usize, usize, &ViewCharge) -> ViewCharge,
    {
        let mut prev = SelectionSet::empty(self.pool.len());
        let mut steps = Vec::with_capacity(self.epochs.len());
        for (e, model) in self.epochs.iter().enumerate() {
            let charged: Vec<ViewCharge> = self
                .pool
                .iter()
                .enumerate()
                .map(|(k, c)| {
                    let transition = if prev.contains(k) {
                        c.carried()
                    } else {
                        c.clone()
                    };
                    reprice(e, k, &transition)
                })
                .collect();
            let problem = SelectionProblem::new(model.clone(), charged);
            let baseline = problem.baseline();
            let mut ev = IncrementalEvaluator::with_selection(&problem, &prev);
            if e == 0 {
                local_search::greedy_fill(&mut ev, scenario, &baseline);
            }
            let evaluation = local_search::improve(&mut ev, scenario, &baseline, max_moves);
            steps.push(self.step(model, e, evaluation, baseline, &prev, scenario));
            prev = steps.last().expect("just pushed").selection().clone();
        }
        steps
    }

    /// The rebuild-per-epoch reference implementation of
    /// [`EpochChain::solve`]: identical transition semantics and move
    /// rules, but each epoch builds a fresh charged problem and a fresh
    /// evaluator repositioned by O(n) flips. Produces bit-identical
    /// steps (tested below); exists as the correctness anchor for the
    /// warm-start machinery and as the baseline the horizon bench
    /// measures against.
    pub fn solve_rebuilding_bounded(&self, scenario: Scenario, max_moves: usize) -> Vec<EpochStep> {
        self.solve_repriced_rebuilding_bounded(scenario, max_moves, &|_, _, charge| charge.clone())
    }

    /// [`EpochChain::solve_rebuilding_bounded`] with the default budget.
    pub fn solve_rebuilding(&self, scenario: Scenario) -> Vec<EpochStep> {
        self.solve_rebuilding_bounded(scenario, local_search::default_move_budget(self.pool.len()))
    }

    /// The transition-*blind* comparator: each epoch is re-solved from
    /// scratch against full prices (as if it stood alone), then the
    /// chosen selection is charged under the true transition accounting
    /// (views kept from the previous myopic selection do not re-pay
    /// materialization). This is exactly the "greedily re-solve each
    /// period" policy a single-period advisor run every month amounts
    /// to; on drifting workloads it churns specialists and re-pays
    /// builds the chain keeps sunk.
    pub fn solve_myopic(&self, scenario: Scenario) -> Vec<EpochStep> {
        let mut prev = SelectionSet::empty(self.pool.len());
        let mut steps = Vec::with_capacity(self.epochs.len());
        for (e, model) in self.epochs.iter().enumerate() {
            let full = SelectionProblem::new(model.clone(), self.pool.clone());
            let solo = local_search::solve_local_search(&full, scenario);
            let mut charged = self.pool.clone();
            for k in prev.ones() {
                charged[k] = self.pool[k].carried();
            }
            let charged_problem = SelectionProblem::new(model.clone(), charged);
            let evaluation = charged_problem.evaluate(&solo.evaluation.selection);
            let baseline = charged_problem.baseline();
            steps.push(self.step(model, e, evaluation, baseline, &prev, scenario));
            prev = steps.last().expect("just pushed").selection().clone();
        }
        steps
    }

    /// The joint **selection + placement** chain solve over a mixed
    /// fleet: each candidate additionally carries a [`Placement`]
    /// deciding which pool its build/refresh work bills against, and
    /// the per-epoch improvement pass gains placement-flip moves
    /// ([`local_search::improve_joint`]) alongside select-flip/swap.
    ///
    /// `reprice(epoch, candidate, placement, transition)` yields the
    /// candidate's effective charge on that pool (the fleet hook:
    /// `mv-cost`'s `PoolCharge` folds rate differentials and spot
    /// interruption premiums into it); `transition` is already the
    /// carry-aware charge — carried only when the candidate survived
    /// the previous epoch *on the same pool*: a placement move rebuilds
    /// the view on the new pool's capacity, so it re-pays
    /// materialization (classified `moved` in the step). `initial`
    /// seeds each candidate's placement; `rebalance == false` pins
    /// them, degenerating to [`EpochChain::solve_repriced_bounded`]
    /// with the per-pool transform — the pure-fleet conformance cases.
    ///
    /// The hot path is unchanged: ONE [`IncrementalEvaluator`] lives
    /// for the whole horizon, every boundary costs one `retarget` plus
    /// an `update_charge` splice per candidate whose effective charge
    /// moved, and every placement flip is itself one O(1)
    /// `update_charge` splice (the transform never touches the answer
    /// profile) — never a rebuild, asserted via
    /// `IncrementalEvaluator::build_count` in
    /// `tests/market_no_rebuild.rs`.
    pub fn solve_fleet_bounded<F>(
        &self,
        scenario: Scenario,
        max_moves: usize,
        initial: &[Placement],
        rebalance: bool,
        reprice: &F,
    ) -> Vec<EpochStep>
    where
        F: Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge,
    {
        let n = self.pool.len();
        assert_eq!(initial.len(), n, "initial placements must cover the pool");
        let effective = |e: usize, k: usize, p: Placement, carried: bool| -> ViewCharge {
            let transition = if carried {
                self.pool[k].carried()
            } else {
                self.pool[k].clone()
            };
            let mut charge = reprice(e, k, p, &transition);
            charge.placement = p;
            charge
        };
        let mut placements: Vec<Placement> = initial.to_vec();
        let mut current: Vec<ViewCharge> = (0..n)
            .map(|k| effective(0, k, placements[k], false))
            .collect();
        let mut ev = IncrementalEvaluator::from_problem(SelectionProblem::new(
            self.epochs[0].clone(),
            current.clone(),
        ));
        let mut prev = SelectionSet::empty(n);
        let mut prev_placements = placements.clone();
        let mut steps = Vec::with_capacity(self.epochs.len());
        for (e, model) in self.epochs.iter().enumerate() {
            mv_obs::span!("chain/epoch");
            if e > 0 {
                ev.retarget(model.clone());
                for (k, slot) in current.iter_mut().enumerate() {
                    let want = effective(e, k, placements[k], prev.contains(k));
                    if want != *slot {
                        ev.update_charge(k, want.clone());
                        *slot = want;
                    }
                }
            }
            let baseline = ev.problem().baseline();
            if e == 0 {
                local_search::greedy_fill(&mut ev, scenario, &baseline);
            }
            let evaluation = if rebalance {
                // Carried-ness during the search keys off the epoch's
                // *entry* state: flipping a carried view's placement
                // re-prices it full (rebuild on the new pool), flipping
                // it back restores the carried charge bit-for-bit.
                let entry_prev = prev.clone();
                let entry_place = placements.clone();
                let charge_for = |k: usize, p: Placement| -> ViewCharge {
                    effective(e, k, p, entry_prev.contains(k) && p == entry_place[k])
                };
                let ev_ = local_search::improve_joint(
                    &mut ev,
                    scenario,
                    &baseline,
                    max_moves,
                    &mut placements,
                    &charge_for,
                );
                // Placement flips spliced new charges in; refresh the
                // boundary-comparison cache from the live problem.
                current.clone_from_slice(ev.problem().candidates());
                ev_
            } else {
                local_search::improve(&mut ev, scenario, &baseline, max_moves)
            };
            steps.push(self.step_with_placements(
                model,
                e,
                evaluation,
                baseline,
                &prev,
                &prev_placements,
                placements.clone(),
                scenario,
            ));
            prev = steps.last().expect("just pushed").selection().clone();
            prev_placements.clone_from_slice(&placements);
        }
        steps
    }

    /// [`EpochChain::solve_fleet_bounded`] with the default per-epoch
    /// move budget.
    pub fn solve_fleet<F>(
        &self,
        scenario: Scenario,
        initial: &[Placement],
        rebalance: bool,
        reprice: &F,
    ) -> Vec<EpochStep>
    where
        F: Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge,
    {
        self.solve_fleet_bounded(
            scenario,
            local_search::default_move_budget(self.pool.len()),
            initial,
            rebalance,
            reprice,
        )
    }

    /// The rebuild-per-epoch reference implementation of
    /// [`EpochChain::solve_fleet_bounded`]: identical transition,
    /// placement and re-pricing semantics, but each epoch builds a
    /// fresh charged problem and a fresh evaluator repositioned by
    /// O(n) flips. Bit-identical steps (property-tested below); the
    /// fleet bench measures against it.
    pub fn solve_fleet_rebuilding_bounded<F>(
        &self,
        scenario: Scenario,
        max_moves: usize,
        initial: &[Placement],
        rebalance: bool,
        reprice: &F,
    ) -> Vec<EpochStep>
    where
        F: Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge,
    {
        let n = self.pool.len();
        assert_eq!(initial.len(), n, "initial placements must cover the pool");
        let effective = |e: usize, k: usize, p: Placement, carried: bool| -> ViewCharge {
            let transition = if carried {
                self.pool[k].carried()
            } else {
                self.pool[k].clone()
            };
            let mut charge = reprice(e, k, p, &transition);
            charge.placement = p;
            charge
        };
        let mut placements: Vec<Placement> = initial.to_vec();
        let mut prev = SelectionSet::empty(n);
        let mut prev_placements = placements.clone();
        let mut steps = Vec::with_capacity(self.epochs.len());
        for (e, model) in self.epochs.iter().enumerate() {
            let charged: Vec<ViewCharge> = (0..n)
                .map(|k| effective(e, k, placements[k], prev.contains(k)))
                .collect();
            let problem = SelectionProblem::new(model.clone(), charged);
            let baseline = problem.baseline();
            let mut ev = IncrementalEvaluator::with_selection(&problem, &prev);
            if e == 0 {
                local_search::greedy_fill(&mut ev, scenario, &baseline);
            }
            let evaluation = if rebalance {
                let entry_prev = prev.clone();
                let entry_place = placements.clone();
                let charge_for = |k: usize, p: Placement| -> ViewCharge {
                    effective(e, k, p, entry_prev.contains(k) && p == entry_place[k])
                };
                local_search::improve_joint(
                    &mut ev,
                    scenario,
                    &baseline,
                    max_moves,
                    &mut placements,
                    &charge_for,
                )
            } else {
                local_search::improve(&mut ev, scenario, &baseline, max_moves)
            };
            steps.push(self.step_with_placements(
                model,
                e,
                evaluation,
                baseline,
                &prev,
                &prev_placements,
                placements.clone(),
                scenario,
            ));
            prev = steps.last().expect("just pushed").selection().clone();
            prev_placements.clone_from_slice(&placements);
        }
        steps
    }

    /// The exact finite-horizon optimum over a tiny pool: dynamic
    /// programming over *selection states per epoch*. State = the subset
    /// selected at epoch `e`; transition `(S_prev → S)` is charged with
    /// materialization only for `S \ S_prev` (exactly the chain's
    /// transition accounting); the value function minimizes total
    /// constraint violation first, then total scenario objective — the
    /// same lexicographic order [`Scenario::better`] ranks candidates
    /// by, summed over the horizon.
    ///
    /// This is the oracle the sequential chain is measured against: the
    /// chain commits each epoch greedily and can land on a
    /// path-suboptimal trajectory (e.g. skipping a build that only pays
    /// off two epochs later), while the DP considers every trajectory.
    /// Its optimality gap is pinned in `tests/dp_oracle.rs`. Complexity
    /// is O(E·4ⁿ) transitions over O(2ⁿ·m) sweep work, so the pool is
    /// capped at [`DP_MAX_CANDIDATES`]; this is a reference solver for
    /// small pools, not a production path.
    ///
    /// The returned per-epoch evaluations are re-derived through
    /// [`SelectionProblem::evaluate`] on the chosen trajectory's charged
    /// problems, so they reproduce externally bit-for-bit; the DP's
    /// internal tallies only pick the trajectory.
    pub fn solve_dp_exact(&self, scenario: Scenario) -> DpSolution {
        let n = self.pool.len();
        assert!(
            n <= DP_MAX_CANDIDATES,
            "DP reference solver supports at most {DP_MAX_CANDIDATES} candidates, got {n}"
        );
        let size: usize = 1 << n;
        let epochs = self.epochs.len();

        // Materialization hours of every subset, indexed by mask (the
        // added-set lookup `mat[cur & !prev]` makes transitions O(1)).
        let mut mat = vec![Hours::ZERO; size];
        for mask in 1..size {
            let low = mask.trailing_zeros() as usize;
            mat[mask] = mat[mask & (mask - 1)] + self.pool[low].materialization;
        }
        let masks: Vec<SelectionSet> = (0..size)
            .map(|m| SelectionSet::from_mask(m as u64, n))
            .collect();

        // Per-epoch, per-mask full-price evaluations via the incremental
        // ascending-mask sweep (amortized two flips per subset).
        let mut full: Vec<Vec<(Hours, CostBreakdown)>> = Vec::with_capacity(epochs);
        let mut baselines = Vec::with_capacity(epochs);
        for model in &self.epochs {
            let problem = SelectionProblem::new(model.clone(), self.pool.clone());
            baselines.push(problem.baseline());
            let mut per_mask = Vec::with_capacity(size);
            crate::sweep::sweep_masks(&problem, 0, size as u64, |_, ev| {
                let e = ev.snapshot();
                per_mask.push((e.time, e.breakdown));
            });
            full.push(per_mask);
        }

        // The charged evaluation of selecting `cur` after `prev` in
        // epoch `e`: the full-price evaluation with materialization
        // re-priced to the added set only.
        let charged = |e: usize, prev: usize, cur: usize| -> Evaluation {
            let (time, breakdown) = full[e][cur];
            Evaluation {
                time,
                breakdown: CostBreakdown {
                    compute_materialization: self.epochs[e].compute_cost(mat[cur & !prev]),
                    ..breakdown
                },
                selection: masks[cur].clone(),
            }
        };

        // value[cur] = (total violation, total objective) of the best
        // trajectory ending in `cur`; ties break toward the
        // first-visited predecessor, so the result is deterministic.
        let better = |a: (f64, f64), b: (f64, f64)| a.0 < b.0 || (a.0 == b.0 && a.1 < b.1);
        let mut value: Vec<(f64, f64)> = (0..size)
            .map(|cur| {
                let ev = charged(0, 0, cur);
                (
                    scenario.violation(&ev),
                    scenario.objective(&ev, &baselines[0]),
                )
            })
            .collect();
        let mut back: Vec<Vec<u32>> = Vec::with_capacity(epochs.saturating_sub(1));
        for (e, epoch_baseline) in baselines.iter().enumerate().skip(1) {
            let mut next = vec![(f64::INFINITY, f64::INFINITY); size];
            let mut prevptr = vec![0u32; size];
            for (prev, &base) in value.iter().enumerate() {
                for (cur, slot) in next.iter_mut().enumerate() {
                    let ev = charged(e, prev, cur);
                    let cand = (
                        base.0 + scenario.violation(&ev),
                        base.1 + scenario.objective(&ev, epoch_baseline),
                    );
                    if better(cand, *slot) {
                        *slot = cand;
                        prevptr[cur] = prev as u32;
                    }
                }
            }
            value = next;
            back.push(prevptr);
        }

        // Best terminal state, then backtrack the trajectory.
        let mut best = 0usize;
        for cur in 1..size {
            if better(value[cur], value[best]) {
                best = cur;
            }
        }
        let mut path = vec![best; epochs];
        for e in (1..epochs).rev() {
            path[e - 1] = back[e - 1][path[e]] as usize;
        }

        // Re-derive the chosen trajectory's evaluations exactly, through
        // the same charged problems the chain would bill.
        let mut evaluations = Vec::with_capacity(epochs);
        let mut total_violation = 0.0;
        let mut total_objective = 0.0;
        let mut prev_mask = 0usize;
        for (e, &cur) in path.iter().enumerate() {
            let mut charges = self.pool.clone();
            for k in masks[cur & prev_mask].ones() {
                charges[k] = self.pool[k].carried();
            }
            let problem = SelectionProblem::new(self.epochs[e].clone(), charges);
            let ev = problem.evaluate(&masks[cur]);
            total_violation += scenario.violation(&ev);
            total_objective += scenario.objective(&ev, &baselines[e]);
            evaluations.push(ev);
            prev_mask = cur;
        }
        DpSolution {
            selections: path.into_iter().map(|m| masks[m].clone()).collect(),
            evaluations,
            total_violation,
            total_objective,
        }
    }

    /// The exact finite-horizon optimum over the **joint** selection +
    /// placement state — the mixed-fleet counterpart of
    /// [`EpochChain::solve_dp_exact`]. Each candidate's per-epoch state
    /// is a trit (unselected / selected-reserved / selected-spot);
    /// transition `(s_prev → s)` charges materialization for every
    /// candidate selected in `s` that was not selected *on the same
    /// pool* in `s_prev` — exactly the fleet chain's transition
    /// accounting, where a placement move rebuilds the view. The value
    /// function minimizes total violation first, then total objective,
    /// as in [`Scenario::better`]'s lexicographic order.
    ///
    /// `reprice` has the [`EpochChain::solve_fleet_bounded`] contract
    /// plus the two properties the factored state tables rely on (both
    /// hold for every pool/risk transform): it scales materialization
    /// multiplicatively (zero in, zero out — so carried charges need no
    /// separate table) and never touches the answer profile (so the
    /// per-mask time table is placement-independent).
    ///
    /// This is the oracle that exposes the sequential chain's
    /// *lookahead* gap on placement: committing each epoch greedily,
    /// the chain parks a view on cheap spot capacity and only moves it
    /// when the crunch premium already bites, while the DP pre-places
    /// it on reserved ahead of the crunch (`tests/dp_oracle.rs` pins a
    /// strictly positive gap). State space is 3ⁿ per epoch, so the
    /// pool is capped at [`DP_FLEET_MAX_CANDIDATES`].
    pub fn solve_dp_fleet<F>(&self, scenario: Scenario, reprice: &F) -> DpFleetSolution
    where
        F: Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge,
    {
        let n = self.pool.len();
        assert!(
            n <= DP_FLEET_MAX_CANDIDATES,
            "joint DP reference solver supports at most {DP_FLEET_MAX_CANDIDATES} candidates, got {n}"
        );
        let states: usize = 3usize.pow(n as u32);
        let epochs = self.epochs.len();
        let trit = |s: usize, k: usize| -> usize { s / 3usize.pow(k as u32) % 3 };
        let placement_of = |t: usize| -> Placement {
            match t {
                1 => Placement::Reserved,
                _ => Placement::Spot,
            }
        };
        let sel_mask = |s: usize| -> usize {
            (0..n).fold(0usize, |m, k| m | usize::from(trit(s, k) != 0) << k)
        };
        let masks: Vec<SelectionSet> = (0..1usize << n)
            .map(|m| SelectionSet::from_mask(m as u64, n))
            .collect();

        // Per-epoch effective full-price charges per (candidate, pool),
        // per-mask times (placement-independent: transforms never touch
        // answers), and per-state partial breakdowns.
        let mut eff: Vec<Vec<[ViewCharge; 2]>> = Vec::with_capacity(epochs);
        let mut times: Vec<Vec<Hours>> = Vec::with_capacity(epochs);
        let mut baselines = Vec::with_capacity(epochs);
        for (e, model) in self.epochs.iter().enumerate() {
            eff.push(
                (0..n)
                    .map(|k| {
                        [
                            reprice(e, k, Placement::Reserved, &self.pool[k]),
                            reprice(e, k, Placement::Spot, &self.pool[k]),
                        ]
                    })
                    .collect(),
            );
            let problem = SelectionProblem::new(model.clone(), self.pool.clone());
            baselines.push(problem.baseline());
            let mut per_mask = Vec::with_capacity(1usize << n);
            crate::sweep::sweep_masks(&problem, 0, 1u64 << n, |_, ev| {
                per_mask.push(ev.snapshot().time);
            });
            times.push(per_mask);
        }
        let eff_of = |e: usize, k: usize, t: usize| &eff[e][k][usize::from(t == 2)];
        // partial[e][s]: the state's breakdown with materialization
        // zeroed (the only transition-dependent component).
        let mut partial: Vec<Vec<(Hours, CostBreakdown)>> = Vec::with_capacity(epochs);
        for (e, model) in self.epochs.iter().enumerate() {
            let mut per_state = Vec::with_capacity(states);
            for s in 0..states {
                let mut maint = Hours::ZERO;
                let mut size = mv_units::Gb::ZERO;
                for k in 0..n {
                    let t = trit(s, k);
                    if t != 0 {
                        let c = eff_of(e, k, t);
                        maint += c.maintenance;
                        size += c.size;
                    }
                }
                let time = times[e][sel_mask(s)];
                per_state.push((
                    time,
                    model.breakdown_from_totals(time, maint, Hours::ZERO, size),
                ));
            }
            partial.push(per_state);
        }

        // Charged evaluation of entering state `cur` from `prev`.
        let charged = |e: usize, prev: usize, cur: usize| -> Evaluation {
            let mut mat = Hours::ZERO;
            for k in 0..n {
                let t = trit(cur, k);
                if t != 0 && trit(prev, k) != t {
                    mat += eff_of(e, k, t).materialization;
                }
            }
            let (time, breakdown) = partial[e][cur];
            Evaluation {
                time,
                breakdown: CostBreakdown {
                    compute_materialization: self.epochs[e].compute_cost(mat),
                    ..breakdown
                },
                selection: masks[sel_mask(cur)].clone(),
            }
        };

        let better = |a: (f64, f64), b: (f64, f64)| a.0 < b.0 || (a.0 == b.0 && a.1 < b.1);
        let mut value: Vec<(f64, f64)> = (0..states)
            .map(|cur| {
                let ev = charged(0, 0, cur);
                (
                    scenario.violation(&ev),
                    scenario.objective(&ev, &baselines[0]),
                )
            })
            .collect();
        let mut back: Vec<Vec<u32>> = Vec::with_capacity(epochs.saturating_sub(1));
        for (e, epoch_baseline) in baselines.iter().enumerate().skip(1) {
            let mut next = vec![(f64::INFINITY, f64::INFINITY); states];
            let mut prevptr = vec![0u32; states];
            for (prev, &base) in value.iter().enumerate() {
                for (cur, slot) in next.iter_mut().enumerate() {
                    let ev = charged(e, prev, cur);
                    let cand = (
                        base.0 + scenario.violation(&ev),
                        base.1 + scenario.objective(&ev, epoch_baseline),
                    );
                    if better(cand, *slot) {
                        *slot = cand;
                        prevptr[cur] = prev as u32;
                    }
                }
            }
            value = next;
            back.push(prevptr);
        }
        let mut best = 0usize;
        for cur in 1..states {
            if better(value[cur], value[best]) {
                best = cur;
            }
        }
        let mut path = vec![best; epochs];
        for e in (1..epochs).rev() {
            path[e - 1] = back[e - 1][path[e]] as usize;
        }

        // Re-derive the chosen trajectory's evaluations exactly through
        // charged problems (the internal tallies only pick it).
        let mut evaluations = Vec::with_capacity(epochs);
        let mut placements = Vec::with_capacity(epochs);
        let mut total_violation = 0.0;
        let mut total_objective = 0.0;
        let mut prev_state = 0usize;
        for (e, &cur) in path.iter().enumerate() {
            let mut charges = self.pool.clone();
            let mut assignment = vec![Placement::Reserved; n];
            for (k, slot) in charges.iter_mut().enumerate() {
                let t = trit(cur, k);
                if t == 0 {
                    continue;
                }
                let p = placement_of(t);
                assignment[k] = p;
                let transition = if trit(prev_state, k) == t {
                    self.pool[k].carried()
                } else {
                    self.pool[k].clone()
                };
                let mut charge = reprice(e, k, p, &transition);
                charge.placement = p;
                *slot = charge;
            }
            let problem = SelectionProblem::new(self.epochs[e].clone(), charges);
            let ev = problem.evaluate(&masks[sel_mask(cur)]);
            total_violation += scenario.violation(&ev);
            total_objective += scenario.objective(&ev, &baselines[e]);
            evaluations.push(ev);
            placements.push(assignment);
            prev_state = cur;
        }
        DpFleetSolution {
            selections: path.iter().map(|&s| masks[sel_mask(s)].clone()).collect(),
            placements,
            evaluations,
            total_violation,
            total_objective,
        }
    }

    /// Solves a whole scenario *tree* of price trajectories in one
    /// pass — the Monte-Carlo hot path. `tree` factors K sampled paths
    /// into shared quote-prefixes (each [`EpochTreeNode`] carries the
    /// quote-repriced costing model for its epoch); this solver visits
    /// every node exactly once, warm-branching the incremental
    /// evaluator at split points. The horizon work is one evaluator
    /// build per *root* plus one [`IncrementalEvaluator::retarget`] +
    /// charge-splice pass per *edge* — instead of per path × epoch as
    /// the flat per-path loop ([`EpochChain::solve_repriced_bounded`])
    /// pays — and one [`IncrementalEvaluator::fork`] per extra sibling
    /// at each split (asserted in `tests/market_no_rebuild.rs`).
    ///
    /// `reprice(node, k, transition)` is the per-node analogue of the
    /// flat solver's `reprice(epoch, k, transition)`; `transition` is
    /// already the carry-aware charge. Returns one root→leaf
    /// `Vec<EpochStep>` per entry of [`EpochTree::leaves`],
    /// **bit-identical** to flat-solving each leaf's lineage as its own
    /// chain: a node's search trajectory depends only on its model, its
    /// effective charges and the selection it inherits — all shared
    /// along the prefix — so solving the prefix once and forking is
    /// exact, not approximate (pinned by the unit tests below and the
    /// workspace-level `tests/tree_identity.rs` proptests).
    ///
    /// `threads > 1` drains ready nodes from a shared work queue (a
    /// node becomes ready when its parent finishes); scheduling cannot
    /// change results, only wall-clock.
    pub fn solve_tree_threaded<F>(
        &self,
        scenario: Scenario,
        max_moves: usize,
        tree: &EpochTree,
        threads: usize,
        reprice: &F,
    ) -> Vec<Vec<EpochStep>>
    where
        F: Fn(usize, usize, &ViewCharge) -> ViewCharge + Sync,
    {
        self.validate_tree(tree);
        let n = self.pool.len();
        let solve = |idx: usize, inherited: Option<TreeState>| -> (EpochStep, TreeState) {
            mv_obs::span!("solve_tree/node");
            let node = &tree.nodes()[idx];
            mv_obs::inc(mv_obs::Counter::TreeNodeSolves);
            if node.parent.is_none() {
                mv_obs::inc(mv_obs::Counter::TreeRootSolves);
            }
            mv_obs::event(
                "tree_node_solve",
                &[("node", idx as f64), ("epoch", node.epoch as f64)],
            );
            let (mut ev, current, prev) = match inherited {
                None => {
                    let current: Vec<ViewCharge> = self
                        .pool
                        .iter()
                        .enumerate()
                        .map(|(k, c)| reprice(idx, k, c))
                        .collect();
                    let ev = IncrementalEvaluator::from_problem(SelectionProblem::new(
                        node.model.clone(),
                        current.clone(),
                    ));
                    (ev, current, SelectionSet::empty(n))
                }
                Some(state) => {
                    let TreeState {
                        mut ev,
                        mut current,
                        prev,
                    } = state;
                    ev.retarget(node.model.clone());
                    for (k, slot) in current.iter_mut().enumerate() {
                        let transition: std::borrow::Cow<'_, ViewCharge> = if prev.contains(k) {
                            std::borrow::Cow::Owned(self.pool[k].carried())
                        } else {
                            std::borrow::Cow::Borrowed(&self.pool[k])
                        };
                        let want = reprice(idx, k, transition.as_ref());
                        if want != *slot {
                            ev.update_charge(k, want.clone());
                            *slot = want;
                        }
                    }
                    (ev, current, prev)
                }
            };
            let baseline = ev.problem().baseline();
            if node.parent.is_none() {
                local_search::greedy_fill(&mut ev, scenario, &baseline);
            }
            let evaluation = local_search::improve(&mut ev, scenario, &baseline, max_moves);
            let step = self.step(
                &node.model,
                node.epoch,
                evaluation,
                baseline,
                &prev,
                scenario,
            );
            let next = step.selection().clone();
            (
                step,
                TreeState {
                    ev,
                    current,
                    prev: next,
                },
            )
        };
        let branch = |s: &TreeState| TreeState {
            ev: s.ev.fork(),
            current: s.current.clone(),
            prev: s.prev.clone(),
        };
        let node_steps = run_tree(tree, threads, solve, branch);
        collect_leaf_steps(tree, &node_steps)
    }

    /// [`EpochChain::solve_tree_threaded`] with the thread count picked
    /// from the machine and the tree's width (a degenerate chain stays
    /// serial inline).
    pub fn solve_tree_bounded<F>(
        &self,
        scenario: Scenario,
        max_moves: usize,
        tree: &EpochTree,
        reprice: &F,
    ) -> Vec<Vec<EpochStep>>
    where
        F: Fn(usize, usize, &ViewCharge) -> ViewCharge + Sync,
    {
        self.solve_tree_threaded(scenario, max_moves, tree, auto_tree_threads(tree), reprice)
    }

    /// [`EpochChain::solve_tree_bounded`] with the default per-epoch
    /// move budget — the tree counterpart of
    /// [`EpochChain::solve_repriced`].
    pub fn solve_tree<F>(
        &self,
        scenario: Scenario,
        tree: &EpochTree,
        reprice: &F,
    ) -> Vec<Vec<EpochStep>>
    where
        F: Fn(usize, usize, &ViewCharge) -> ViewCharge + Sync,
    {
        self.solve_tree_bounded(
            scenario,
            local_search::default_move_budget(self.pool.len()),
            tree,
            reprice,
        )
    }

    /// The mixed-fleet scenario-tree solve — the tree counterpart of
    /// [`EpochChain::solve_fleet_bounded`], with the same joint
    /// selection + placement semantics per node and the same
    /// one-solve-per-node accounting as
    /// [`EpochChain::solve_tree_threaded`]. Placement state branches
    /// with the evaluator, so sibling subtrees rebalance independently.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_tree_fleet_threaded<F>(
        &self,
        scenario: Scenario,
        max_moves: usize,
        tree: &EpochTree,
        threads: usize,
        initial: &[Placement],
        rebalance: bool,
        reprice: &F,
    ) -> Vec<Vec<EpochStep>>
    where
        F: Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge + Sync,
    {
        self.validate_tree(tree);
        let n = self.pool.len();
        assert_eq!(initial.len(), n, "initial placements must cover the pool");
        let effective = |node: usize, k: usize, p: Placement, carried: bool| -> ViewCharge {
            let transition = if carried {
                self.pool[k].carried()
            } else {
                self.pool[k].clone()
            };
            let mut charge = reprice(node, k, p, &transition);
            charge.placement = p;
            charge
        };
        let solve =
            |idx: usize, inherited: Option<TreeFleetState>| -> (EpochStep, TreeFleetState) {
                mv_obs::span!("solve_tree/node");
                let node = &tree.nodes()[idx];
                mv_obs::inc(mv_obs::Counter::TreeNodeSolves);
                if node.parent.is_none() {
                    mv_obs::inc(mv_obs::Counter::TreeRootSolves);
                }
                mv_obs::event(
                    "tree_node_solve",
                    &[("node", idx as f64), ("epoch", node.epoch as f64)],
                );
                let (mut ev, mut current, prev, mut placements) = match inherited {
                    None => {
                        let placements: Vec<Placement> = initial.to_vec();
                        let current: Vec<ViewCharge> = (0..n)
                            .map(|k| effective(idx, k, placements[k], false))
                            .collect();
                        let ev = IncrementalEvaluator::from_problem(SelectionProblem::new(
                            node.model.clone(),
                            current.clone(),
                        ));
                        (ev, current, SelectionSet::empty(n), placements)
                    }
                    Some(state) => {
                        let TreeFleetState {
                            mut ev,
                            mut current,
                            prev,
                            placements,
                        } = state;
                        ev.retarget(node.model.clone());
                        for (k, slot) in current.iter_mut().enumerate() {
                            let want = effective(idx, k, placements[k], prev.contains(k));
                            if want != *slot {
                                ev.update_charge(k, want.clone());
                                *slot = want;
                            }
                        }
                        (ev, current, prev, placements)
                    }
                };
                let baseline = ev.problem().baseline();
                if node.parent.is_none() {
                    local_search::greedy_fill(&mut ev, scenario, &baseline);
                }
                // Carried-ness during the search keys off the node's *entry*
                // state, exactly as the flat fleet solver does per epoch.
                let entry_place = placements.clone();
                let evaluation = if rebalance {
                    let entry_prev = prev.clone();
                    let charge_for = |k: usize, p: Placement| -> ViewCharge {
                        effective(idx, k, p, entry_prev.contains(k) && p == entry_place[k])
                    };
                    let ev_ = local_search::improve_joint(
                        &mut ev,
                        scenario,
                        &baseline,
                        max_moves,
                        &mut placements,
                        &charge_for,
                    );
                    current.clone_from_slice(ev.problem().candidates());
                    ev_
                } else {
                    local_search::improve(&mut ev, scenario, &baseline, max_moves)
                };
                let step = self.step_with_placements(
                    &node.model,
                    node.epoch,
                    evaluation,
                    baseline,
                    &prev,
                    &entry_place,
                    placements.clone(),
                    scenario,
                );
                let next = step.selection().clone();
                (
                    step,
                    TreeFleetState {
                        ev,
                        current,
                        prev: next,
                        placements,
                    },
                )
            };
        let branch = |s: &TreeFleetState| TreeFleetState {
            ev: s.ev.fork(),
            current: s.current.clone(),
            prev: s.prev.clone(),
            placements: s.placements.clone(),
        };
        let node_steps = run_tree(tree, threads, solve, branch);
        collect_leaf_steps(tree, &node_steps)
    }

    /// [`EpochChain::solve_tree_fleet_threaded`] with the thread count
    /// picked from the machine and the tree's width.
    pub fn solve_tree_fleet_bounded<F>(
        &self,
        scenario: Scenario,
        max_moves: usize,
        tree: &EpochTree,
        initial: &[Placement],
        rebalance: bool,
        reprice: &F,
    ) -> Vec<Vec<EpochStep>>
    where
        F: Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge + Sync,
    {
        self.solve_tree_fleet_threaded(
            scenario,
            max_moves,
            tree,
            auto_tree_threads(tree),
            initial,
            rebalance,
            reprice,
        )
    }

    /// [`EpochChain::solve_tree_fleet_bounded`] with the default
    /// per-epoch move budget — the tree counterpart of
    /// [`EpochChain::solve_fleet`].
    pub fn solve_tree_fleet<F>(
        &self,
        scenario: Scenario,
        tree: &EpochTree,
        initial: &[Placement],
        rebalance: bool,
        reprice: &F,
    ) -> Vec<Vec<EpochStep>>
    where
        F: Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge + Sync,
    {
        self.solve_tree_fleet_bounded(
            scenario,
            local_search::default_move_budget(self.pool.len()),
            tree,
            initial,
            rebalance,
            reprice,
        )
    }

    /// Validates a scenario tree against this chain: every node model
    /// must cover the chain's query universe (that is what keeps the
    /// branched evaluators' answer caches valid across
    /// [`IncrementalEvaluator::retarget`]), node epochs must fit the
    /// horizon, and every leaf must sit at the final epoch.
    fn validate_tree(&self, tree: &EpochTree) {
        let m = self.epochs[0].context().workload.len();
        for (idx, node) in tree.nodes().iter().enumerate() {
            assert!(
                node.epoch < self.len(),
                "tree node {idx} at epoch {} exceeds the {}-epoch horizon",
                node.epoch,
                self.len()
            );
            assert_eq!(
                node.model.context().workload.len(),
                m,
                "tree node {idx} has a different workload length"
            );
        }
        for &leaf in tree.leaves() {
            assert_eq!(
                tree.nodes()[leaf].epoch,
                self.len() - 1,
                "leaf {leaf} must sit at the final epoch"
            );
        }
    }

    /// Assembles one epoch's step: transition accounting against the
    /// previous selection plus the full-price reference evaluation.
    /// Single-fleet solvers: every candidate keeps its pool charge's
    /// own placement, so the `moved` partition is always empty.
    /// `model` is the epoch's *effective* costing model — the chain's
    /// own epoch model on the flat solvers, the node's quote-repriced
    /// model on the tree solvers.
    fn step(
        &self,
        model: &CloudCostModel,
        epoch: usize,
        evaluation: Evaluation,
        baseline: Evaluation,
        prev: &SelectionSet,
        scenario: Scenario,
    ) -> EpochStep {
        let placements: Vec<Placement> = self.pool.iter().map(|c| c.placement).collect();
        self.step_with_placements(
            model,
            epoch,
            evaluation,
            baseline,
            prev,
            &placements.clone(),
            placements,
            scenario,
        )
    }

    /// [`EpochChain::step`] with explicit placement state: a candidate
    /// selected in both epochs whose placement changed is classified
    /// `moved` (it re-paid materialization on the new pool) instead of
    /// `kept`.
    #[allow(clippy::too_many_arguments)]
    fn step_with_placements(
        &self,
        model: &CloudCostModel,
        epoch: usize,
        evaluation: Evaluation,
        baseline: Evaluation,
        prev: &SelectionSet,
        prev_placements: &[Placement],
        placements: Vec<Placement>,
        scenario: Scenario,
    ) -> EpochStep {
        let selection = evaluation.selection.clone();
        let mut added = Vec::new();
        let mut kept = Vec::new();
        let mut moved = Vec::new();
        for k in selection.ones() {
            if !prev.contains(k) {
                added.push(k);
            } else if placements[k] != prev_placements[k] {
                moved.push(k);
            } else {
                kept.push(k);
            }
        }
        let dropped: Vec<usize> = prev.ones().filter(|&k| !selection.contains(k)).collect();
        debug_assert!(epoch > 0 || (kept.is_empty() && dropped.is_empty()));
        mv_obs::inc(mv_obs::Counter::ChainEpochSteps);
        if mv_obs::enabled() {
            mv_obs::event(
                "epoch_transition",
                &[
                    ("epoch", epoch as f64),
                    ("added", added.len() as f64),
                    ("kept", kept.len() as f64),
                    ("dropped", dropped.len() as f64),
                    ("moved", moved.len() as f64),
                ],
            );
        }
        // The full-price reference differs from the charged evaluation
        // only in the materialization component (carrying a view changes
        // nothing else), so it is derived — in the model's own fold
        // order, hence bit-identical to evaluating a full-price problem
        // from scratch (property-tested in tests/horizon_consistency.rs)
        // — instead of rebuilding and re-evaluating a problem per epoch.
        let full_materialization: Hours =
            selection.ones().map(|k| self.pool[k].materialization).sum();
        let full_price = Evaluation {
            time: evaluation.time,
            breakdown: CostBreakdown {
                compute_materialization: model.compute_cost(full_materialization),
                ..evaluation.breakdown
            },
            selection: selection.clone(),
        };
        EpochStep {
            outcome: Outcome::new(evaluation, baseline, scenario, SolverKind::LocalSearch),
            full_price,
            added,
            kept,
            dropped,
            moved,
            placements,
        }
    }
}

/// One node of an [`EpochTree`]: a distinct price-prefix of some
/// Monte-Carlo path, carrying its own (quote-repriced) costing model
/// for the epoch it sits at.
#[derive(Debug, Clone)]
pub struct EpochTreeNode {
    /// The previous epoch's node; `None` for a root (epoch-0 node).
    pub parent: Option<usize>,
    /// The epoch this node prices.
    pub epoch: usize,
    /// The node's effective costing model — same query universe as the
    /// chain, pricing already repriced to the node's quote.
    pub model: CloudCostModel,
}

/// A prefix forest over Monte-Carlo price paths, in solver terms: each
/// node is one epoch-solve, each edge one warm evaluator transition.
/// `mv-market`'s `ScenarioTree` compiles into this (the driver attaches
/// the quote-repriced models); this crate stays market-agnostic.
///
/// Nodes are stored parent-before-child, so index order is a valid
/// (serial) schedule and any parent-completes-first schedule yields the
/// same results.
#[derive(Debug, Clone)]
pub struct EpochTree {
    nodes: Vec<EpochTreeNode>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
    leaves: Vec<usize>,
    width: usize,
}

impl EpochTree {
    /// Builds a tree from parent-linked nodes plus the leaf node each
    /// requested path ends at (duplicates allowed: identical sampled
    /// paths share a leaf).
    ///
    /// # Panics
    /// Panics unless nodes are stored parent-before-child, roots sit at
    /// epoch 0, every child sits one epoch below its parent, and every
    /// leaf sits at one common final epoch.
    pub fn new(nodes: Vec<EpochTreeNode>, leaves: Vec<usize>) -> EpochTree {
        assert!(!nodes.is_empty(), "an epoch tree needs at least one node");
        assert!(!leaves.is_empty(), "an epoch tree needs at least one leaf");
        let mut children = vec![Vec::new(); nodes.len()];
        let mut roots = Vec::new();
        let mut per_epoch: Vec<usize> = Vec::new();
        for (idx, node) in nodes.iter().enumerate() {
            match node.parent {
                None => {
                    assert_eq!(node.epoch, 0, "root node {idx} must sit at epoch 0");
                    roots.push(idx);
                }
                Some(p) => {
                    assert!(p < idx, "node {idx} must be stored after its parent {p}");
                    assert_eq!(
                        node.epoch,
                        nodes[p].epoch + 1,
                        "node {idx} must sit one epoch below its parent"
                    );
                    children[p].push(idx);
                }
            }
            if node.epoch >= per_epoch.len() {
                per_epoch.resize(node.epoch + 1, 0);
            }
            per_epoch[node.epoch] += 1;
        }
        for &l in &leaves {
            assert!(l < nodes.len(), "leaf {l} out of {} nodes", nodes.len());
        }
        let last = nodes[leaves[0]].epoch;
        for &l in &leaves {
            assert_eq!(
                nodes[l].epoch, last,
                "every leaf must sit at the same final epoch"
            );
        }
        let width = per_epoch.iter().copied().max().unwrap_or(1);
        EpochTree {
            nodes,
            children,
            roots,
            leaves,
            width,
        }
    }

    /// Every node, parent-before-child.
    pub fn nodes(&self) -> &[EpochTreeNode] {
        &self.nodes
    }

    /// The children of node `idx`, ascending.
    pub fn children(&self, idx: usize) -> &[usize] {
        &self.children[idx]
    }

    /// The epoch-0 nodes — each costs one fresh evaluator build.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The leaf node of each requested path, in request order.
    pub fn leaves(&self) -> &[usize] {
        &self.leaves
    }

    /// Total node count — the number of epoch-solves a tree solve
    /// performs (vs `paths × epochs` for the flat loop).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree has no nodes (never constructible via
    /// [`EpochTree::new`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Edge count (nodes minus roots) — the number of warm
    /// retarget+splice transitions a tree solve pays.
    pub fn edges(&self) -> usize {
        self.nodes.len() - self.roots.len()
    }

    /// The widest epoch's node count — the maximum useful worker count.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The root→leaf node chain ending at `leaf`, in epoch order.
    pub fn lineage(&self, leaf: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut at = Some(leaf);
        while let Some(i) = at {
            chain.push(i);
            at = self.nodes[i].parent;
        }
        chain.reverse();
        chain
    }
}

/// Per-branch solver state threaded through [`run_tree`] by the
/// single-fleet tree solve.
struct TreeState {
    ev: IncrementalEvaluator<'static>,
    current: Vec<ViewCharge>,
    prev: SelectionSet,
}

/// [`TreeState`] plus the standing placement assignment, for the fleet
/// tree solve.
struct TreeFleetState {
    ev: IncrementalEvaluator<'static>,
    current: Vec<ViewCharge>,
    prev: SelectionSet,
    placements: Vec<Placement>,
}

/// Thread count for a tree solve: one worker per unit of maximum tree
/// width, capped by the machine. A degenerate chain (width 1) stays
/// serial inline, paying no scope setup.
fn auto_tree_threads(tree: &EpochTree) -> usize {
    std::thread::available_parallelism()
        .map_or(1, |t| t.get())
        .min(tree.width())
}

/// Clones each leaf's root→leaf step chain out of the per-node results.
fn collect_leaf_steps(tree: &EpochTree, node_steps: &[EpochStep]) -> Vec<Vec<EpochStep>> {
    tree.leaves()
        .iter()
        .map(|&leaf| {
            tree.lineage(leaf)
                .into_iter()
                .map(|i| node_steps[i].clone())
                .collect()
        })
        .collect()
}

/// Solves every tree node exactly once, parents before children,
/// handing each node's post-solve state to its children: the last
/// child takes it by move, earlier siblings get a `branch` fork.
/// Returns one [`EpochStep`] per node, in node order.
///
/// With `threads <= 1` this is a plain forward pass (nodes are stored
/// parent-before-child). Otherwise `threads` workers drain a shared
/// ready queue under a mutex + condvar — a node enters the queue the
/// moment its parent finishes. Results are schedule-independent: a
/// node's inputs come only from its parent.
fn run_tree<S, Solve, Branch>(
    tree: &EpochTree,
    threads: usize,
    solve: Solve,
    branch: Branch,
) -> Vec<EpochStep>
where
    S: Send,
    Solve: Fn(usize, Option<S>) -> (EpochStep, S) + Sync,
    Branch: Fn(&S) -> S + Sync,
{
    let len = tree.len();
    if mv_obs::enabled() {
        // Branch-width telemetry (a width-w split pays w-1 forks).
        for i in 0..len {
            let width = tree.children(i).len();
            if width >= 2 {
                mv_obs::record(mv_obs::Hist::TreeForkWidth, width as u64);
            }
        }
    }
    let mut inbox: Vec<Option<S>> = (0..len).map(|_| None).collect();
    if threads <= 1 {
        let mut steps = Vec::with_capacity(len);
        for i in 0..len {
            let (step, state) = solve(i, inbox[i].take());
            steps.push(step);
            if let Some((&last, rest)) = tree.children(i).split_last() {
                for &c in rest {
                    inbox[c] = Some(branch(&state));
                }
                inbox[last] = Some(state);
            }
        }
        return steps;
    }

    use std::collections::VecDeque;
    use std::sync::{Condvar, Mutex};
    struct Board<S> {
        queue: VecDeque<usize>,
        inbox: Vec<Option<S>>,
        steps: Vec<Option<EpochStep>>,
        done: usize,
    }
    let board = Mutex::new(Board {
        queue: tree.roots().iter().copied().collect(),
        inbox,
        steps: (0..len).map(|_| None).collect(),
        done: 0,
    });
    let ready = Condvar::new();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let (i, inherited) = {
                    let mut b = board.lock().expect("tree board poisoned");
                    loop {
                        if b.done == len {
                            return;
                        }
                        if let Some(i) = b.queue.pop_front() {
                            let inherited = b.inbox[i].take();
                            break (i, inherited);
                        }
                        b = ready.wait(b).expect("tree board poisoned");
                    }
                };
                let (step, state) = solve(i, inherited);
                // Fork outside the lock: sibling hand-offs are the
                // expensive part of a split.
                let kids = tree.children(i);
                let mut ship: Vec<(usize, S)> = Vec::with_capacity(kids.len());
                if let Some((&last, rest)) = kids.split_last() {
                    for &c in rest {
                        ship.push((c, branch(&state)));
                    }
                    ship.push((last, state));
                }
                let mut b = board.lock().expect("tree board poisoned");
                b.steps[i] = Some(step);
                b.done += 1;
                for (c, s) in ship {
                    b.inbox[c] = Some(s);
                    b.queue.push_back(c);
                }
                drop(b);
                ready.notify_all();
            });
        }
    })
    .expect("tree solve scope failed");
    board
        .into_inner()
        .expect("tree board poisoned")
        .steps
        .into_iter()
        .map(|s| s.expect("every tree node solved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_like_problem;

    /// `epochs` identical copies of the paper-like problem's model.
    fn flat_chain(epochs: usize) -> EpochChain {
        let p = paper_like_problem();
        EpochChain::new(vec![p.model().clone(); epochs], p.candidates().to_vec())
    }

    #[test]
    fn zero_drift_keeps_the_selection_and_stops_paying_materialization() {
        let chain = flat_chain(3);
        let scenario = Scenario::tradeoff_normalized(0.5);
        let steps = chain.solve(scenario);
        assert_eq!(steps.len(), 3);
        let solo = crate::solve_local_search(
            &SelectionProblem::new(chain.epochs()[0].clone(), chain.pool().to_vec()),
            scenario,
        );
        // Epoch 0 is exactly the single-period solve; later epochs keep
        // its selection and their full-price reference reproduces it
        // bit-for-bit.
        assert_eq!(steps[0].outcome.evaluation, solo.evaluation);
        for (e, s) in steps.iter().enumerate() {
            assert_eq!(s.selection(), &solo.evaluation.selection, "epoch {e}");
            assert_eq!(s.full_price, solo.evaluation, "epoch {e}");
        }
        // After epoch 0 everything is carried: no additions, no drops,
        // and the charged bill drops by exactly the materialization
        // component.
        for s in &steps[1..] {
            assert!(s.added.is_empty() && s.dropped.is_empty());
            assert_eq!(s.kept.len(), solo.evaluation.num_selected());
            assert_eq!(
                s.outcome.evaluation.breakdown.compute_materialization,
                Money::ZERO
            );
            assert!(s.outcome.evaluation.cost() <= steps[0].outcome.evaluation.cost());
            assert_eq!(s.outcome.evaluation.time, steps[0].outcome.evaluation.time);
        }
    }

    #[test]
    fn warm_start_matches_rebuild_per_epoch_bit_for_bit() {
        // Drifting frequencies so transitions actually fire.
        let chain = drifting_chain(5);
        for scenario in [
            Scenario::tradeoff(0.02),
            Scenario::tradeoff_normalized(0.5),
            Scenario::time_limit(Hours::new(20.0)),
        ] {
            let warm = chain.solve(scenario);
            let rebuilt = chain.solve_rebuilding(scenario);
            assert_eq!(warm.len(), rebuilt.len());
            for (e, (w, r)) in warm.iter().zip(&rebuilt).enumerate() {
                assert_eq!(w.outcome.evaluation, r.outcome.evaluation, "epoch {e}");
                assert_eq!(w.full_price, r.full_price, "epoch {e}");
                assert_eq!(w.added, r.added, "epoch {e}");
                assert_eq!(w.kept, r.kept, "epoch {e}");
                assert_eq!(w.dropped, r.dropped, "epoch {e}");
            }
        }
    }

    #[test]
    fn repriced_warm_start_matches_rebuild_bit_for_bit() {
        let chain = drifting_chain(5);
        // A per-epoch transform shaped like the market's interruption
        // premium: build/refresh inflate with the epoch, answers don't.
        let reprice = |e: usize, _k: usize, c: &ViewCharge| -> ViewCharge {
            let attempts = 1.0 + 0.15 * e as f64;
            ViewCharge {
                materialization: c.materialization * attempts,
                maintenance: c.maintenance * attempts,
                ..c.clone()
            }
        };
        let budget = crate::local_search::default_move_budget(chain.pool().len());
        for scenario in [
            Scenario::tradeoff(0.02),
            Scenario::tradeoff_normalized(0.5),
            Scenario::time_limit(Hours::new(20.0)),
        ] {
            let warm = chain.solve_repriced(scenario, &reprice);
            let rebuilt = chain.solve_repriced_rebuilding_bounded(scenario, budget, &reprice);
            assert_eq!(warm.len(), rebuilt.len());
            for (e, (w, r)) in warm.iter().zip(&rebuilt).enumerate() {
                assert_eq!(w.outcome.evaluation, r.outcome.evaluation, "epoch {e}");
                assert_eq!(w.added, r.added, "epoch {e}");
                assert_eq!(w.kept, r.kept, "epoch {e}");
                assert_eq!(w.dropped, r.dropped, "epoch {e}");
            }
        }
    }

    #[test]
    fn identity_reprice_is_solve_bounded_bit_for_bit() {
        let chain = drifting_chain(4);
        for scenario in [Scenario::tradeoff(0.02), Scenario::tradeoff_normalized(0.5)] {
            let plain = chain.solve(scenario);
            let repriced = chain.solve_repriced(scenario, &|_, _, c| c.clone());
            for (e, (p, r)) in plain.iter().zip(&repriced).enumerate() {
                assert_eq!(p.outcome.evaluation, r.outcome.evaluation, "epoch {e}");
                assert_eq!(p.full_price, r.full_price, "epoch {e}");
            }
        }
    }

    #[test]
    fn charged_steps_reproduce_on_their_charged_problems() {
        let chain = drifting_chain(4);
        let steps = chain.solve(Scenario::tradeoff(0.02));
        let mut prev = SelectionSet::empty(chain.pool().len());
        for (e, s) in steps.iter().enumerate() {
            let mut charged = chain.pool().to_vec();
            for k in prev.ones() {
                charged[k] = chain.pool()[k].carried();
            }
            let p = SelectionProblem::new(chain.epochs()[e].clone(), charged);
            assert_eq!(s.outcome.evaluation, p.evaluate(s.selection()), "epoch {e}");
            assert_eq!(s.outcome.baseline, p.baseline(), "epoch {e}");
            prev = s.selection().clone();
        }
    }

    #[test]
    fn chain_beats_myopic_churn() {
        // Pins the path-dependence claim: greedily re-solving each
        // epoch from scratch is suboptimal on a drifting horizon. (The
        // alternating two-specialist fixture lives in
        // `fixtures::churn_chain`; the end-to-end variant is in
        // `tests/horizon.rs`.)
        let chain = crate::fixtures::churn_chain(4);
        let scenario = Scenario::tradeoff(0.02);
        let myopic = chain.solve_myopic(scenario);
        let aware = chain.solve(scenario);
        // Myopic really churns: every epoch adds the hot specialist
        // afresh and drops the cold one.
        for (e, s) in myopic.iter().enumerate() {
            assert_eq!(s.added.len(), 1, "epoch {e} added {:?}", s.added);
            assert_eq!(s.kept.len(), 0, "epoch {e}");
            assert!(
                s.outcome.evaluation.breakdown.compute_materialization > Money::ZERO,
                "epoch {e} paid no materialization"
            );
        }
        // The chain settles on both specialists and stops paying
        // builds after epoch 1.
        for s in &aware[2..] {
            assert!(s.added.is_empty());
            assert_eq!(
                s.outcome.evaluation.breakdown.compute_materialization,
                Money::ZERO
            );
        }
        let chain_total = horizon_cost(&aware);
        let myopic_total = horizon_cost(&myopic);
        assert!(
            chain_total < myopic_total,
            "transition-aware {chain_total} must beat myopic {myopic_total}"
        );
        // Here the chain is faster too (both specialists stay resident).
        assert!(horizon_time(&aware) <= horizon_time(&myopic));
    }

    /// Paper-like pool with sinusoidally drifting frequencies.
    fn drifting_chain(epochs: usize) -> EpochChain {
        let p = paper_like_problem();
        let models = (0..epochs)
            .map(|e| {
                let mut ctx = p.model().context().clone();
                let m = ctx.workload.len() as f64;
                for (i, q) in ctx.workload.iter_mut().enumerate() {
                    let phase = (e as f64 + i as f64 / m) * std::f64::consts::TAU / 4.0;
                    q.frequency = 1.0 + 0.8 * phase.sin();
                }
                CloudCostModel::new(ctx)
            })
            .collect();
        EpochChain::new(models, p.candidates().to_vec())
    }

    #[test]
    fn transition_partitions_are_consistent() {
        let chain = drifting_chain(6);
        let steps = chain.solve(Scenario::budget(Money::from_dollars(1_000)));
        let mut prev: Vec<usize> = Vec::new();
        for s in &steps {
            let mut sel: Vec<usize> = s.selection().ones().collect();
            sel.sort_unstable();
            let mut union: Vec<usize> = s.added.iter().chain(&s.kept).copied().collect();
            union.sort_unstable();
            assert_eq!(sel, union, "added ∪ kept must equal the selection");
            for k in &s.kept {
                assert!(prev.contains(k));
            }
            for k in &s.dropped {
                assert!(prev.contains(k) && !sel.contains(k));
            }
            prev = sel;
        }
    }

    /// A fleet transform shaped like the market's: spot work rides a
    /// per-epoch rate factor and an interruption premium, reserved work
    /// bills at the primary sheet.
    fn fleet_reprice(
        spot_factor: &'static [f64],
        spot_attempts: &'static [f64],
    ) -> impl Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge {
        move |e, _k, p, c| match p {
            Placement::Reserved => c.clone(),
            Placement::Spot => ViewCharge {
                materialization: c.materialization * (spot_factor[e] * spot_attempts[e]),
                maintenance: c.maintenance * (spot_factor[e] * spot_attempts[e]),
                ..c.clone()
            },
        }
    }

    #[test]
    fn fleet_warm_start_matches_rebuild_bit_for_bit() {
        let chain = drifting_chain(5);
        let factors: &[f64] = &[0.4, 0.5, 0.9, 0.6, 0.4];
        let attempts: &[f64] = &[1.0, 1.5, 2.0, 1.25, 1.0];
        let reprice = fleet_reprice(factors, attempts);
        let initial = vec![Placement::Reserved; chain.pool().len()];
        let budget = crate::local_search::default_move_budget(chain.pool().len());
        for scenario in [
            Scenario::tradeoff(0.02),
            Scenario::tradeoff_normalized(0.5),
            Scenario::time_limit(Hours::new(20.0)),
        ] {
            for rebalance in [false, true] {
                let warm =
                    chain.solve_fleet_bounded(scenario, budget, &initial, rebalance, &reprice);
                let rebuilt = chain.solve_fleet_rebuilding_bounded(
                    scenario, budget, &initial, rebalance, &reprice,
                );
                assert_eq!(warm.len(), rebuilt.len());
                for (e, (w, r)) in warm.iter().zip(&rebuilt).enumerate() {
                    assert_eq!(w.outcome.evaluation, r.outcome.evaluation, "epoch {e}");
                    assert_eq!(w.placements, r.placements, "epoch {e}");
                    assert_eq!(w.added, r.added, "epoch {e}");
                    assert_eq!(w.kept, r.kept, "epoch {e}");
                    assert_eq!(w.moved, r.moved, "epoch {e}");
                    assert_eq!(w.dropped, r.dropped, "epoch {e}");
                }
            }
        }
    }

    #[test]
    fn pinned_fleet_is_solve_repriced_bit_for_bit() {
        // A fleet that cannot rebalance, with every view on the primary
        // pool, is the single-fleet repriced chain exactly — the
        // degenerate case the workspace-level conformance tests extend
        // to `Advisor::solve_market`.
        let chain = drifting_chain(4);
        let n = chain.pool().len();
        let attempts: &[f64] = &[1.0, 1.6, 2.2, 1.3];
        let single = |e: usize, _k: usize, c: &ViewCharge| -> ViewCharge {
            ViewCharge {
                materialization: c.materialization * attempts[e],
                maintenance: c.maintenance * attempts[e],
                ..c.clone()
            }
        };
        let fleet = move |e: usize, k: usize, _p: Placement, c: &ViewCharge| single(e, k, c);
        for scenario in [Scenario::tradeoff(0.02), Scenario::tradeoff_normalized(0.5)] {
            let plain = chain.solve_repriced(scenario, &single);
            let pinned = chain.solve_fleet(scenario, &vec![Placement::Reserved; n], false, &fleet);
            for (e, (p, f)) in plain.iter().zip(&pinned).enumerate() {
                assert_eq!(p.outcome.evaluation, f.outcome.evaluation, "epoch {e}");
                assert_eq!(p.added, f.added, "epoch {e}");
                assert_eq!(p.kept, f.kept, "epoch {e}");
                assert!(f.moved.is_empty(), "epoch {e}");
            }
        }
    }

    /// Two always-hot specialist queries with hefty multi-hour builds,
    /// so pool-rate differentials survive AWS whole-hour rounding (the
    /// paper-like pool's sub-hour charges round to the same billed hour
    /// on either pool).
    fn hot_chain(epochs: usize) -> EpochChain {
        use mv_cost::{CostContext, QueryCharge};
        let pricing = mv_pricing::presets::aws_2012();
        let instance = pricing.compute.instance("small").unwrap().clone();
        let models: Vec<CloudCostModel> = (0..epochs)
            .map(|_| {
                let mut q1 = QueryCharge::new("Q1", mv_units::Gb::new(0.01), Hours::new(10.0));
                q1.frequency = 5.0;
                let mut q2 = QueryCharge::new("Q2", mv_units::Gb::new(0.01), Hours::new(10.0));
                q2.frequency = 5.0;
                CloudCostModel::new(CostContext {
                    pricing: pricing.clone(),
                    instance: instance.clone(),
                    nb_instances: 1,
                    months: mv_units::Months::new(1.0),
                    dataset_size: mv_units::Gb::new(10.0),
                    inserts: vec![],
                    workload: vec![q1, q2],
                })
            })
            .collect();
        let pool = vec![
            ViewCharge::new(
                "spec-Q1",
                mv_units::Gb::new(1.0),
                Hours::new(8.0),
                Hours::new(2.0),
                2,
            )
            .answers(0, Hours::new(0.5)),
            ViewCharge::new(
                "spec-Q2",
                mv_units::Gb::new(1.0),
                Hours::new(8.0),
                Hours::new(2.0),
                2,
            )
            .answers(1, Hours::new(0.5)),
        ];
        EpochChain::new(models, pool)
    }

    #[test]
    fn rebalancing_moves_views_to_the_cheaper_pool() {
        // Spot work at 40% of the reserved rate and no interruption:
        // every selected view should end up spot-placed, and flipping
        // placement must never rebuild the evaluator.
        let chain = hot_chain(3);
        let n = chain.pool().len();
        let factors: &[f64] = &[0.4, 0.4, 0.4];
        let attempts: &[f64] = &[1.0, 1.0, 1.0];
        let reprice = fleet_reprice(factors, attempts);
        let counters = mv_obs::CounterGuard::scoped();
        let steps = chain.solve_fleet(
            Scenario::tradeoff(0.02),
            &vec![Placement::Reserved; n],
            true,
            &reprice,
        );
        assert_eq!(
            counters.delta(mv_obs::Counter::EvaluatorBuild),
            1,
            "fleet chain must keep one evaluator for the whole horizon"
        );
        drop(counters);
        for (e, s) in steps.iter().enumerate() {
            for k in s.selection().ones() {
                assert_eq!(s.placements[k], Placement::Spot, "epoch {e} view {k}");
            }
        }
        // The spot-placed horizon is strictly cheaper than the pinned
        // reserved one.
        let pinned = chain.solve_fleet(
            Scenario::tradeoff(0.02),
            &vec![Placement::Reserved; n],
            false,
            &reprice,
        );
        assert!(horizon_cost(&steps) < horizon_cost(&pinned));
    }

    #[test]
    fn placement_moves_repay_materialization() {
        // Epoch 0 spot is cheap; from epoch 1 a crunch inflates spot
        // work 8×. The chain moves the resident views to reserved at
        // the boundary — classified `moved`, re-paying materialization.
        let chain = hot_chain(3);
        let n = chain.pool().len();
        let factors: &[f64] = &[0.2, 1.0, 1.0];
        let attempts: &[f64] = &[1.0, 8.0, 8.0];
        let reprice = fleet_reprice(factors, attempts);
        let steps = chain.solve_fleet(
            Scenario::tradeoff(0.02),
            &vec![Placement::Spot; n],
            true,
            &reprice,
        );
        let selected: Vec<usize> = steps[0].selection().ones().collect();
        assert!(!selected.is_empty());
        for k in &selected {
            assert_eq!(steps[0].placements[*k], Placement::Spot);
        }
        // The boundary move re-pays the build: moved non-empty and the
        // epoch bills materialization again.
        let moved_epoch = steps
            .iter()
            .position(|s| !s.moved.is_empty())
            .expect("the crunch should force a placement move");
        assert!(
            steps[moved_epoch]
                .outcome
                .evaluation
                .breakdown
                .compute_materialization
                > Money::ZERO
        );
        for k in steps[moved_epoch].selection().ones() {
            assert_eq!(steps[moved_epoch].placements[k], Placement::Reserved);
        }
    }

    #[test]
    fn dp_fleet_single_epoch_matches_selection_dp_on_a_neutral_fleet() {
        // With both pools charging identically, the joint DP must land
        // on the selection-only DP's numbers.
        let p = paper_like_problem();
        let chain = EpochChain::new(vec![p.model().clone(); 3], p.candidates().to_vec());
        let scenario = Scenario::tradeoff_normalized(0.5);
        let dp = chain.solve_dp_exact(scenario);
        let joint = chain.solve_dp_fleet(scenario, &|_, _, _, c| c.clone());
        assert_eq!(joint.total_violation, dp.total_violation);
        assert_eq!(joint.total_objective, dp.total_objective);
        assert_eq!(joint.total_cost(), dp.total_cost());
        for (e, (a, b)) in joint.selections.iter().zip(&dp.selections).enumerate() {
            assert_eq!(a, b, "epoch {e}");
        }
    }

    #[test]
    #[should_panic(expected = "at most 6 candidates")]
    fn dp_fleet_rejects_oversized_pools() {
        let p = crate::fixtures::random_problem(1, 3, 7);
        let chain = EpochChain::new(vec![p.model().clone()], p.candidates().to_vec());
        chain.solve_dp_fleet(Scenario::tradeoff_normalized(0.5), &|_, _, _, c| c.clone());
    }

    #[test]
    #[should_panic(expected = "initial placements must cover")]
    fn fleet_initial_must_align() {
        let chain = flat_chain(2);
        chain.solve_fleet(
            Scenario::tradeoff(0.02),
            &[Placement::Spot],
            true,
            &|_, _, _, c: &ViewCharge| c.clone(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn empty_horizon_rejected() {
        EpochChain::new(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "different workload length")]
    fn mismatched_epoch_workloads_rejected() {
        let p = paper_like_problem();
        let mut ctx = p.model().context().clone();
        ctx.workload.pop();
        EpochChain::new(
            vec![p.model().clone(), CloudCostModel::new(ctx)],
            p.candidates().to_vec(),
        );
    }

    /// Scales every query frequency of `model` by `1 + delta` — a
    /// deterministic stand-in for a branch-specific price/drift quote.
    fn perturbed(model: &CloudCostModel, delta: f64) -> CloudCostModel {
        if delta == 0.0 {
            return model.clone();
        }
        let mut ctx = model.context().clone();
        for q in ctx.workload.iter_mut() {
            q.frequency *= 1.0 + delta;
        }
        CloudCostModel::new(ctx)
    }

    /// A 3-leaf, 7-node tree over a 4-epoch drifting chain: paths share
    /// epochs 0–1, split at epoch 2 (two branches), and branch B splits
    /// again at epoch 3.
    ///
    /// ```text
    ///   0 ── 1 ──┬── 2 ─── 4          leaves: [4, 5, 6]
    ///            └── 3 ──┬─ 5
    ///                    └─ 6
    /// ```
    fn branchy_tree(chain: &EpochChain) -> EpochTree {
        let m = chain.epochs();
        let node = |parent: Option<usize>, epoch: usize, delta: f64| EpochTreeNode {
            parent,
            epoch,
            model: perturbed(&m[epoch], delta),
        };
        EpochTree::new(
            vec![
                node(None, 0, 0.0),
                node(Some(0), 1, 0.0),
                node(Some(1), 2, 0.0),
                node(Some(1), 2, 0.35),
                node(Some(2), 3, 0.0),
                node(Some(3), 3, 0.35),
                node(Some(3), 3, 0.7),
            ],
            vec![4, 5, 6],
        )
    }

    /// The flat per-path reference for one leaf: its lineage solved as
    /// a stand-alone chain with the node-indexed reprice mapped down to
    /// epochs.
    fn lineage_chain(
        chain: &EpochChain,
        tree: &EpochTree,
        leaf: usize,
    ) -> (EpochChain, Vec<usize>) {
        let lineage = tree.lineage(leaf);
        let models: Vec<CloudCostModel> = lineage
            .iter()
            .map(|&i| tree.nodes()[i].model.clone())
            .collect();
        (EpochChain::new(models, chain.pool().to_vec()), lineage)
    }

    fn assert_steps_eq(a: &[EpochStep], b: &[EpochStep], tag: &str) {
        assert_eq!(a.len(), b.len(), "{tag}: length");
        for (e, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.outcome.evaluation, y.outcome.evaluation,
                "{tag} epoch {e}"
            );
            assert_eq!(x.outcome.baseline, y.outcome.baseline, "{tag} epoch {e}");
            assert_eq!(x.full_price, y.full_price, "{tag} epoch {e}");
            assert_eq!(x.added, y.added, "{tag} epoch {e}");
            assert_eq!(x.kept, y.kept, "{tag} epoch {e}");
            assert_eq!(x.dropped, y.dropped, "{tag} epoch {e}");
            assert_eq!(x.moved, y.moved, "{tag} epoch {e}");
            assert_eq!(x.placements, y.placements, "{tag} epoch {e}");
        }
    }

    #[test]
    fn tree_solve_is_bit_identical_to_flat_per_path_solves() {
        let chain = drifting_chain(4);
        let tree = branchy_tree(&chain);
        // A per-node transform shaped like the market's interruption
        // premium, keyed on the node's epoch so the flat reference can
        // reproduce it exactly.
        let attempts = |e: usize| 1.0 + 0.2 * e as f64;
        let tree_reprice = |node: usize, _k: usize, c: &ViewCharge| -> ViewCharge {
            let a = attempts(tree.nodes()[node].epoch);
            ViewCharge {
                materialization: c.materialization * a,
                maintenance: c.maintenance * a,
                ..c.clone()
            }
        };
        for scenario in [
            Scenario::tradeoff(0.02),
            Scenario::tradeoff_normalized(0.5),
            Scenario::time_limit(Hours::new(20.0)),
        ] {
            let solved = chain.solve_tree(scenario, &tree, &tree_reprice);
            assert_eq!(solved.len(), tree.leaves().len());
            for (j, &leaf) in tree.leaves().iter().enumerate() {
                let (flat, _) = lineage_chain(&chain, &tree, leaf);
                let reference = flat.solve_repriced(scenario, &|e, _k, c: &ViewCharge| {
                    let a = attempts(e);
                    ViewCharge {
                        materialization: c.materialization * a,
                        maintenance: c.maintenance * a,
                        ..c.clone()
                    }
                });
                assert_steps_eq(
                    &solved[j],
                    &reference,
                    &format!("leaf {leaf} ({scenario:?})"),
                );
            }
        }
    }

    #[test]
    fn tree_fleet_solve_is_bit_identical_to_flat_per_path_solves() {
        let chain = drifting_chain(4);
        let tree = branchy_tree(&chain);
        let n = chain.pool().len();
        let initial = vec![Placement::Reserved; n];
        // Spot factor keyed on the node's epoch (so the flat reference
        // can reproduce it) with enough spread to force rebalancing.
        let spot = |e: usize| [0.4, 0.5, 0.9, 0.45][e];
        let tree_reprice = |node: usize, _k: usize, p: Placement, c: &ViewCharge| -> ViewCharge {
            match p {
                Placement::Reserved => c.clone(),
                Placement::Spot => {
                    let f = spot(tree.nodes()[node].epoch);
                    ViewCharge {
                        materialization: c.materialization * f,
                        maintenance: c.maintenance * f,
                        ..c.clone()
                    }
                }
            }
        };
        let flat_reprice = |e: usize, _k: usize, p: Placement, c: &ViewCharge| -> ViewCharge {
            match p {
                Placement::Reserved => c.clone(),
                Placement::Spot => ViewCharge {
                    materialization: c.materialization * spot(e),
                    maintenance: c.maintenance * spot(e),
                    ..c.clone()
                },
            }
        };
        for scenario in [Scenario::tradeoff(0.02), Scenario::tradeoff_normalized(0.5)] {
            for rebalance in [false, true] {
                let solved =
                    chain.solve_tree_fleet(scenario, &tree, &initial, rebalance, &tree_reprice);
                for (j, &leaf) in tree.leaves().iter().enumerate() {
                    let (flat, _) = lineage_chain(&chain, &tree, leaf);
                    let reference = flat.solve_fleet(scenario, &initial, rebalance, &flat_reprice);
                    assert_steps_eq(
                        &solved[j],
                        &reference,
                        &format!("leaf {leaf} rebalance={rebalance} ({scenario:?})"),
                    );
                }
            }
        }
    }

    #[test]
    fn tree_solve_is_schedule_independent() {
        // The work-queue path must match the serial inline path for any
        // worker count (the 1-CPU CI box never exercises it otherwise).
        let chain = drifting_chain(4);
        let tree = branchy_tree(&chain);
        let scenario = Scenario::tradeoff_normalized(0.5);
        let budget = crate::local_search::default_move_budget(chain.pool().len());
        let serial =
            chain.solve_tree_threaded(scenario, budget, &tree, 1, &|_, _, c: &ViewCharge| {
                c.clone()
            });
        for threads in [2, 4] {
            let parallel = chain.solve_tree_threaded(
                scenario,
                budget,
                &tree,
                threads,
                &|_, _, c: &ViewCharge| c.clone(),
            );
            for (j, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_steps_eq(s, p, &format!("leaf {j} threads={threads}"));
            }
        }
        let n = chain.pool().len();
        let initial = vec![Placement::Reserved; n];
        let fleet = |_: usize, _: usize, p: Placement, c: &ViewCharge| -> ViewCharge {
            match p {
                Placement::Reserved => c.clone(),
                Placement::Spot => ViewCharge {
                    materialization: c.materialization * 0.4,
                    maintenance: c.maintenance * 0.4,
                    ..c.clone()
                },
            }
        };
        let serial_fleet =
            chain.solve_tree_fleet_threaded(scenario, budget, &tree, 1, &initial, true, &fleet);
        let parallel_fleet =
            chain.solve_tree_fleet_threaded(scenario, budget, &tree, 4, &initial, true, &fleet);
        for (j, (s, p)) in serial_fleet.iter().zip(&parallel_fleet).enumerate() {
            assert_steps_eq(s, p, &format!("fleet leaf {j}"));
        }
    }

    #[test]
    fn degenerate_chain_tree_reproduces_solve() {
        // A deterministic market's tree is a single chain: the tree
        // solve must be `solve` exactly, for every leaf alias.
        let chain = drifting_chain(4);
        let nodes: Vec<EpochTreeNode> = (0..4)
            .map(|e| EpochTreeNode {
                parent: (e > 0).then(|| e - 1),
                epoch: e,
                model: chain.epochs()[e].clone(),
            })
            .collect();
        let tree = EpochTree::new(nodes, vec![3, 3, 3]);
        assert_eq!(tree.edges(), 3);
        assert_eq!(tree.width(), 1);
        let scenario = Scenario::tradeoff(0.02);
        let solved = chain.solve_tree(scenario, &tree, &|_, _, c: &ViewCharge| c.clone());
        let reference = chain.solve(scenario);
        for (j, steps) in solved.iter().enumerate() {
            assert_steps_eq(steps, &reference, &format!("alias {j}"));
        }
    }

    #[test]
    #[should_panic(expected = "one epoch below its parent")]
    fn tree_rejects_epoch_gaps() {
        let chain = flat_chain(3);
        let node = |parent: Option<usize>, epoch: usize| EpochTreeNode {
            parent,
            epoch,
            model: chain.epochs()[epoch].clone(),
        };
        EpochTree::new(vec![node(None, 0), node(Some(0), 2)], vec![1]);
    }

    #[test]
    #[should_panic(expected = "final epoch")]
    fn tree_leaves_must_reach_the_horizon() {
        let chain = flat_chain(3);
        let node = |parent: Option<usize>, epoch: usize| EpochTreeNode {
            parent,
            epoch,
            model: chain.epochs()[epoch].clone(),
        };
        let tree = EpochTree::new(vec![node(None, 0), node(Some(0), 1)], vec![1]);
        chain.solve_tree(Scenario::tradeoff(0.02), &tree, &|_, _, c: &ViewCharge| {
            c.clone()
        });
    }
}
