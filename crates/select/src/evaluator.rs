//! Incremental evaluation of single-candidate selection changes.
//!
//! Every solver probes neighbors of a current selection: "what happens
//! if view `k` is flipped on (or off)?" Answering through
//! [`SelectionProblem::evaluate`] recomputes the full interaction model —
//! O(n·m) for n candidates and m workload queries — per probe, which
//! makes greedy O(n²·m) per pass and exhaustive O(2ⁿ·n·m).
//!
//! [`IncrementalEvaluator`] caches, per workload query, the fastest
//! selected view **and the runner-up**. A flip then touches only the
//! queries the flipped view can answer:
//!
//! * flipping **on** is a constant-time best/second update per affected
//!   query — O(m) per flip;
//! * flipping **off** falls back to the cached runner-up, and only
//!   rescans a query's answer list when the flipped view was one of its
//!   two fastest — O(m) typical, O(n·m) only in adversarial flip
//!   sequences.
//!
//! [`IncrementalEvaluator::snapshot`] rebuilds a full [`Evaluation`] in
//! O(n + m) from the cached per-query minima, summing in exactly the
//! same order as [`SelectionProblem::evaluate`] (and assembling the
//! breakdown through `CloudCostModel::breakdown_from_totals`, the same
//! routine `with_views` uses), so snapshots are **bit-identical** to
//! full re-evaluations — property-tested in `tests/evaluator_matches.rs`.

use mv_cost::{CostBreakdown, SelectionSet};
use mv_units::{Gb, Hours, Money, Months};

use crate::{Evaluation, SelectionProblem};

/// Sentinel candidate index meaning "no view".
const NONE: u32 = u32::MAX;

/// One cached (candidate, time) entry; `view == NONE` means empty.
#[derive(Debug, Clone, Copy)]
struct Slot {
    view: u32,
    time: Hours,
}

impl Slot {
    const EMPTY: Slot = Slot {
        view: NONE,
        time: Hours::ZERO,
    };

    #[inline]
    fn is_empty(self) -> bool {
        self.view == NONE
    }
}

/// Per-query cache: the two fastest *selected* views able to answer it.
#[derive(Debug, Clone, Copy)]
struct QueryCache {
    best: Slot,
    second: Slot,
}

/// O(m)-per-flip evaluator over a [`SelectionProblem`].
///
/// ```
/// use mv_select::{fixtures, IncrementalEvaluator};
///
/// let problem = fixtures::paper_like_problem();
/// let mut ev = IncrementalEvaluator::new(&problem);
/// ev.flip(0);
/// let mut sel = mv_cost::SelectionSet::empty(problem.len());
/// sel.set(0, true);
/// assert_eq!(ev.snapshot(), problem.evaluate(&sel));
/// ev.unflip(0);
/// assert_eq!(ev.snapshot(), problem.baseline());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator<'p> {
    problem: &'p SelectionProblem,
    selection: SelectionSet,
    /// `per_view[k]` = the queries view `k` answers, as `(query, time)`.
    per_view: Vec<Vec<(u32, Hours)>>,
    /// `answers[i]` = the views answering query `i`, as `(view, time)`,
    /// ascending by view index (used for runner-up rescans).
    answers: Vec<Vec<(u32, Hours)>>,
    queries: Vec<QueryCache>,
    /// Transfer cost is selection-independent: cached once.
    transfer: Money,
    /// Storage-interval template: `(inserts_applied, duration)` per
    /// billable interval, precomputed from the context's insert events
    /// (which are selection-independent; only the *size* each interval
    /// holds shifts by the selected views' total size).
    storage_intervals: Vec<(usize, Months)>,
}

impl<'p> IncrementalEvaluator<'p> {
    /// Builds an evaluator positioned at the empty selection. O(n·m).
    pub fn new(problem: &'p SelectionProblem) -> Self {
        let m = problem.model().context().workload.len();
        let n = problem.len();
        let mut per_view = vec![Vec::new(); n];
        let mut answers = vec![Vec::new(); m];
        for (k, v) in problem.candidates().iter().enumerate() {
            for (i, t) in v.query_times.iter().enumerate() {
                if let Some(t) = t {
                    per_view[k].push((i as u32, *t));
                    answers[i].push((k as u32, *t));
                }
            }
        }
        IncrementalEvaluator {
            problem,
            selection: SelectionSet::empty(n),
            per_view,
            answers,
            queries: vec![
                QueryCache {
                    best: Slot::EMPTY,
                    second: Slot::EMPTY,
                };
                m
            ],
            transfer: problem.model().transfer_cost(),
            storage_intervals: storage_interval_template(problem),
        }
    }

    /// Builds an evaluator positioned at `selection`.
    pub fn with_selection(problem: &'p SelectionProblem, selection: &SelectionSet) -> Self {
        let mut ev = IncrementalEvaluator::new(problem);
        for k in selection.ones() {
            ev.flip(k);
        }
        ev
    }

    /// The underlying problem.
    pub fn problem(&self) -> &'p SelectionProblem {
        self.problem
    }

    /// The current selection.
    pub fn selection(&self) -> &SelectionSet {
        &self.selection
    }

    /// Whether candidate `k` is currently selected.
    pub fn is_selected(&self, k: usize) -> bool {
        self.selection.contains(k)
    }

    /// Selects candidate `k` (must currently be deselected). O(m).
    pub fn flip(&mut self, k: usize) {
        assert!(
            !self.selection.contains(k),
            "candidate {k} already selected"
        );
        self.selection.set(k, true);
        let kk = k as u32;
        for &(i, t) in &self.per_view[k] {
            let q = &mut self.queries[i as usize];
            if q.best.is_empty() || t < q.best.time {
                q.second = q.best;
                q.best = Slot { view: kk, time: t };
            } else if q.second.is_empty() || t < q.second.time {
                q.second = Slot { view: kk, time: t };
            }
        }
    }

    /// Deselects candidate `k` (must currently be selected). O(m) unless
    /// `k` was a query's best or runner-up, in which case that query's
    /// answer list is rescanned.
    pub fn unflip(&mut self, k: usize) {
        assert!(self.selection.contains(k), "candidate {k} not selected");
        self.selection.set(k, false);
        let kk = k as u32;
        for idx in 0..self.per_view[k].len() {
            let i = self.per_view[k][idx].0 as usize;
            let q = self.queries[i];
            if q.best.view == kk {
                let second = q.second;
                let new_second = if second.is_empty() {
                    Slot::EMPTY
                } else {
                    self.rescan_runner_up(i, second.view)
                };
                self.queries[i] = QueryCache {
                    best: second,
                    second: new_second,
                };
            } else if q.second.view == kk {
                self.queries[i].second = self.rescan_runner_up(i, q.best.view);
            }
        }
    }

    /// Toggles candidate `k` regardless of current state.
    pub fn toggle(&mut self, k: usize) {
        if self.selection.contains(k) {
            self.unflip(k);
        } else {
            self.flip(k);
        }
    }

    /// Finds the fastest selected view answering query `i`, excluding
    /// `except` (the current best). O(answers(i)).
    fn rescan_runner_up(&self, i: usize, except: u32) -> Slot {
        let mut out = Slot::EMPTY;
        for &(v, t) in &self.answers[i] {
            if v == except || !self.selection.contains(v as usize) {
                continue;
            }
            if out.is_empty() || t < out.time {
                out = Slot { view: v, time: t };
            }
        }
        out
    }

    /// Effective time of query `i` under the current selection: the
    /// cached best selected view, else the query's base time. O(1).
    pub fn query_time(&self, i: usize) -> Hours {
        let base = self.problem.model().context().workload[i].base_time;
        let best = self.queries[i].best;
        if best.is_empty() {
            base
        } else {
            base.min(best.time)
        }
    }

    /// Frequency-weighted total processing time (Formula 9 summed),
    /// recomputed from the per-query caches in workload order — the same
    /// summation order as `processing_time_with_views`, so the result is
    /// bit-identical. O(m).
    pub fn processing_time(&self) -> Hours {
        self.problem
            .model()
            .context()
            .workload
            .iter()
            .enumerate()
            .map(|(i, q)| self.query_time(i) * q.frequency)
            .sum()
    }

    /// Full [`Evaluation`] of the current selection, agreeing exactly
    /// with [`SelectionProblem::evaluate`]. O(n + m).
    ///
    /// Exactness: the time total is summed in workload order and the
    /// per-candidate totals in candidate order — the same fold orders as
    /// the model's own aggregation; compute components go through
    /// `CloudCostModel::compute_cost` (the routine `with_views` uses);
    /// the transfer cost is selection-independent and cached; and the
    /// storage cost replays the model's interval/size chain over the
    /// precomputed template, so every `f64` operation matches
    /// `storage_cost_with_extra` bit for bit — without rebuilding (and
    /// re-allocating) a `StorageTimeline` per probe.
    pub fn snapshot(&self) -> Evaluation {
        let model = self.problem.model();
        let candidates = self.problem.candidates();
        let time = self.processing_time();
        // One fused pass over the selected candidates; each accumulator
        // folds in ascending candidate order from its zero, exactly like
        // the model's separate `.sum()` calls.
        let mut maintenance = Hours::ZERO;
        let mut materialization = Hours::ZERO;
        let mut views_size = Gb::ZERO;
        for k in self.selection.ones() {
            let v = &candidates[k];
            // `+=` delegates to the same float add as `a + b`, so the fold
            // stays bit-identical to the model's `.sum()`.
            maintenance += v.maintenance;
            materialization += v.materialization;
            views_size += v.size;
        }
        Evaluation {
            time,
            breakdown: CostBreakdown {
                transfer: self.transfer,
                compute_processing: model.compute_cost(time),
                compute_maintenance: model.compute_cost(maintenance),
                compute_materialization: model.compute_cost(materialization),
                storage: self.storage_cost(views_size),
            },
            selection: self.selection.clone(),
        }
    }

    /// Storage cost of dataset + inserts + `extra` over the billing
    /// period, replaying the model's timeline arithmetic over the
    /// precomputed interval template (no allocation).
    fn storage_cost(&self, extra: Gb) -> Money {
        let ctx = self.problem.model().context();
        // The size chain: (dataset + extra), then each insert in order —
        // the identical float-add sequence `StorageTimeline` records.
        let mut size = ctx.dataset_size + extra;
        let mut applied = 0;
        let mut total = Money::ZERO;
        for &(inserts_applied, duration) in &self.storage_intervals {
            while applied < inserts_applied {
                size += ctx.inserts[applied].1;
                applied += 1;
            }
            total += ctx.pricing.storage.cost(size, duration);
        }
        total
    }
}

/// Precomputes the billable-interval structure of the problem's storage
/// timeline: for each interval, how many insert events precede it and
/// how long it lasts. Mirrors `StorageTimeline::intervals` (same-instant
/// coalescing, horizon clamping, zero-length skipping), which is
/// selection-independent — only interval *sizes* depend on the selected
/// views, via the size chain replayed in
/// [`IncrementalEvaluator::storage_cost`].
fn storage_interval_template(problem: &SelectionProblem) -> Vec<(usize, Months)> {
    let ctx = problem.model().context();
    let horizon = ctx.months;
    // Points: (time, inserts applied up to and including this point),
    // coalescing same-instant events exactly like `StorageTimeline`.
    let mut points: Vec<(Months, usize)> = vec![(Months::ZERO, 0)];
    for (idx, (at, _)) in ctx.inserts.iter().enumerate() {
        let last = points.last_mut().expect("points never empty");
        if at.value() == last.0.value() {
            last.1 = idx + 1;
        } else {
            points.push((*at, idx + 1));
        }
    }
    let mut out = Vec::with_capacity(points.len());
    for (i, (start, applied)) in points.iter().enumerate() {
        if start.value() >= horizon.value() {
            break;
        }
        let end = points
            .get(i + 1)
            .map(|(t, _)| t.min(horizon))
            .unwrap_or(horizon);
        if end.value() > start.value() {
            out.push((*applied, end - *start));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_like_problem, random_problem};

    #[test]
    fn empty_matches_baseline() {
        let p = paper_like_problem();
        let ev = IncrementalEvaluator::new(&p);
        assert_eq!(ev.snapshot(), p.baseline());
    }

    #[test]
    fn single_flips_match_evaluate() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        for k in 0..p.len() {
            ev.flip(k);
            let mut sel = SelectionSet::empty(p.len());
            sel.set(k, true);
            assert_eq!(ev.snapshot(), p.evaluate(&sel), "flip {k}");
            ev.unflip(k);
            assert_eq!(ev.snapshot(), p.baseline(), "unflip {k}");
        }
    }

    #[test]
    fn random_walks_match_evaluate() {
        for seed in 0..10 {
            let p = random_problem(seed, 4, 8);
            let mut ev = IncrementalEvaluator::new(&p);
            let mut sel = SelectionSet::empty(p.len());
            // Deterministic pseudo-random flip sequence.
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            for step in 0..64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let k = (state as usize) % p.len();
                ev.toggle(k);
                sel.set(k, !sel.contains(k));
                assert_eq!(ev.snapshot(), p.evaluate(&sel), "seed {seed} step {step}");
            }
        }
    }

    #[test]
    fn with_selection_positions_correctly() {
        let p = paper_like_problem();
        let sel = SelectionSet::from_mask(0b0101, p.len());
        let ev = IncrementalEvaluator::with_selection(&p, &sel);
        assert_eq!(ev.snapshot(), p.evaluate(&sel));
        assert!(ev.is_selected(0) && ev.is_selected(2));
        assert!(!ev.is_selected(1));
    }

    #[test]
    #[should_panic(expected = "already selected")]
    fn double_flip_panics() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.flip(0);
        ev.flip(0);
    }

    #[test]
    #[should_panic(expected = "not selected")]
    fn unflip_unselected_panics() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.unflip(0);
    }
}
