//! Incremental evaluation of single-candidate selection changes.
//!
//! Every solver probes neighbors of a current selection: "what happens
//! if view `k` is flipped on (or off)?" Answering through
//! [`SelectionProblem::evaluate`] recomputes the full interaction model —
//! O(n·m) for n candidates and m workload queries — per probe, which
//! makes greedy O(n²·m) per pass and exhaustive O(2ⁿ·n·m).
//!
//! [`IncrementalEvaluator`] caches, per workload query, the fastest
//! selected view **and the runner-up**. A flip then touches only the
//! queries the flipped view can answer:
//!
//! * flipping **on** is a constant-time best/second update per affected
//!   query — O(deg) for a view answering `deg` queries;
//! * flipping **off** falls back to the cached runner-up, and only
//!   rescans a query's answer table when the flipped view was one of its
//!   two fastest.
//!
//! # Sparse struct-of-arrays layout
//!
//! At production scale (n = 2 000 candidates, m = 50 000 queries) most
//! views answer a handful of queries, so every table here is sparse and
//! flat:
//!
//! * the per-view answer lists live in one shared **CSR arena** — two
//!   parallel `Vec`s of query ids and times, with a `(start, len)` span
//!   per view — so a flip walks one contiguous slice, no per-view `Vec`
//!   pointer chasing;
//! * the per-query reverse index is a **top-k pruned answer table**
//!   (fixed stride [`ANSWER_TOP_K`], parallel id/time arrays): only the
//!   k fastest answerers of each query are indexed. A per-query
//!   `pruned` flag records whether any answerer was ever left out;
//!   rescans that find no selected member in a pruned table fall back
//!   to an exact sweep of the selected views' spans, so pruning can
//!   never lose the true runner-up (see `topk_insert` for the
//!   invariant);
//! * the best/runner-up cache is four parallel arrays, not an
//!   array-of-structs.
//!
//! # Dirty-delta snapshots
//!
//! [`IncrementalEvaluator::snapshot`] rebuilds a full [`Evaluation`]
//! from the cached per-query minima through the canonical blocked
//! processing-time fold (`mv_cost::TIME_FOLD_BLOCK`-wide partial sums):
//! flips mark only the blocks whose best view changed, and a probe
//! refolds just those blocks plus the O(m/B) block-sum total — O(deg)
//! per probe where the flat fold was O(n + m)
//! ([`IncrementalEvaluator::snapshot_cold`] keeps the full fold as the
//! benchmark reference). Every fold runs in exactly the same order as
//! [`SelectionProblem::evaluate`] (and the breakdown assembles through
//! `CloudCostModel::compute_cost`, the same routine `with_views` uses),
//! so snapshots are **bit-identical** to full re-evaluations —
//! property-tested in `tests/evaluator_matches.rs`.
//!
//! # Dynamic candidates
//!
//! The candidate set itself can evolve mid-search, which is what lets
//! the advisor *stream* lattice candidates instead of materializing all
//! of them up front:
//!
//! * [`IncrementalEvaluator::add_candidate`] appends a new view's span
//!   to the arena and offers its entries to the per-query top-k tables —
//!   O(deg), no rebuild;
//! * [`IncrementalEvaluator::remove_candidate`] retires a candidate with
//!   `Vec::swap_remove` index semantics (only the last index is
//!   renumbered), auto-deselecting it first so no best/runner-up slot is
//!   left pointing at the retired index. Its arena span is abandoned in
//!   place; the arena compacts itself once dead entries outnumber live
//!   ones.
//!
//! The evaluator holds its problem as a clone-on-write handle: solvers
//! probing a fixed problem borrow it (zero copies, as before), while the
//! first dynamic edit promotes the evaluator to an owned problem that
//! grows and shrinks with the candidate pool. `snapshot()` stays
//! bit-identical to a from-scratch `SelectionProblem::evaluate` on the
//! equivalent static problem throughout — property-tested over random
//! add/remove/flip interleavings in `tests/evaluator_matches.rs`.

use std::borrow::Cow;

use mv_cost::{CloudCostModel, CostBreakdown, SelectionSet, ViewCharge, TIME_FOLD_BLOCK};
use mv_obs::{Counter, Hist};
use mv_units::{Gb, Hours, Money, Months};

use crate::{Evaluation, SelectionProblem};

/// Sentinel candidate index meaning "no view".
const NONE: u32 = u32::MAX;

/// Answerers indexed per query before pruning kicks in. Eight covers
/// every selected-best plus runner-up pattern the solvers probe while
/// keeping the table one cache line of ids; queries with more answerers
/// set their `pruned` flag and keep the exact-fallback path honest.
pub const ANSWER_TOP_K: usize = 8;

/// Compact the arena only past this many dead entries (tiny problems
/// never bother).
const COMPACT_MIN_DEAD: usize = 1024;

// Build / retarget / fork accounting lives in the `mv-obs` registry
// ([`Counter::EvaluatorBuild`] and friends) rather than in ad-hoc
// process statics: counters only move while telemetry is enabled, and
// delta-asserting tests scope their reads with `mv_obs::CounterGuard`
// (which serializes those sections process-wide — the old always-on
// statics made cross-test interleaving a latent hazard under threaded
// `cargo test`).

/// One view's slice of the CSR arena.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: u32,
    len: u32,
}

/// O(deg)-per-flip evaluator over a [`SelectionProblem`].
///
/// ```
/// use mv_select::{fixtures, IncrementalEvaluator};
///
/// let problem = fixtures::paper_like_problem();
/// let mut ev = IncrementalEvaluator::new(&problem);
/// ev.flip(0);
/// let mut sel = mv_cost::SelectionSet::empty(problem.len());
/// sel.set(0, true);
/// assert_eq!(ev.snapshot(), problem.evaluate(&sel));
/// ev.unflip(0);
/// assert_eq!(ev.snapshot(), problem.baseline());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator<'p> {
    problem: Cow<'p, SelectionProblem>,
    selection: SelectionSet,
    /// Per-view spans into the shared answer arena.
    spans: Vec<Span>,
    /// Arena: query ids, ascending within each span.
    arena_q: Vec<u32>,
    /// Arena: answer times, parallel to `arena_q`.
    arena_t: Vec<Hours>,
    /// Arena entries abandoned by removals/resplices; triggers
    /// compaction once they outnumber the live entries.
    dead: usize,
    /// Top-k answer table: view ids, `ANSWER_TOP_K` slots per query.
    top_view: Vec<u32>,
    /// Top-k answer table: times, parallel to `top_view`.
    top_time: Vec<Hours>,
    /// Occupied top-k slots per query.
    top_len: Vec<u8>,
    /// Whether query `i` ever had an answerer kept *out* of its top-k
    /// table. Once set, an empty-handed table rescan must fall back to
    /// the exact sweep; never reset (outsiders are untracked).
    pruned: Vec<bool>,
    /// Fastest selected view per query (`NONE` = none selected).
    best_view: Vec<u32>,
    /// Its time; meaningless where `best_view` is `NONE`.
    best_time: Vec<Hours>,
    /// Runner-up selected view per query.
    second_view: Vec<u32>,
    /// Its time; meaningless where `second_view` is `NONE`.
    second_time: Vec<Hours>,
    /// Transfer cost is selection-independent: cached once.
    transfer: Money,
    /// Storage-interval template: `(inserts_applied, duration)` per
    /// billable interval, precomputed from the context's insert events
    /// (which are selection-independent; only the *size* each interval
    /// holds shifts by the selected views' total size).
    storage_intervals: Vec<(usize, Months)>,
    /// Cached per-block partial sums of the canonical
    /// [`TIME_FOLD_BLOCK`]-wide processing-time fold. A probe refolds
    /// only the blocks whose per-query minima changed since the last
    /// refresh, so `snapshot()` is O(selected + m/B + B·dirty) instead
    /// of O(n + m).
    block_time: Vec<Hours>,
    /// Whether block `b` needs a refold (parallel to `block_time`).
    block_dirty: Vec<bool>,
    /// The dirty blocks, unordered (refolds are independent).
    dirty_blocks: Vec<u32>,
    /// Every block is stale (fresh build / retarget): refold them all
    /// and ignore the dirty list.
    all_dirty: bool,
}

impl<'p> IncrementalEvaluator<'p> {
    /// Builds an evaluator positioned at the empty selection, borrowing
    /// `problem`. O(Σ deg + m).
    pub fn new(problem: &'p SelectionProblem) -> Self {
        Self::build(Cow::Borrowed(problem))
    }

    /// Builds an evaluator that **owns** its problem — the streaming
    /// entry point: start from a zero-candidate problem and grow it with
    /// [`IncrementalEvaluator::add_candidate`] without ever paying the
    /// copy-on-write promotion.
    pub fn from_problem(problem: SelectionProblem) -> IncrementalEvaluator<'static> {
        IncrementalEvaluator::build(Cow::Owned(problem))
    }

    /// Total evaluator builds recorded by `mv-obs` so far (monotone
    /// while telemetry is enabled; frozen otherwise). Delta-asserting
    /// tests should scope reads with [`mv_obs::CounterGuard`] — it
    /// enables telemetry and serializes concurrent delta sections —
    /// and compare deltas to prove a hot loop never paid a full
    /// rebuild (the no-rebuild assertions of the market tests).
    pub fn build_count() -> usize {
        mv_obs::counter::get(Counter::EvaluatorBuild) as usize
    }

    /// Total [`IncrementalEvaluator::retarget`] calls recorded by
    /// `mv-obs` so far. The scenario-tree tests assert "one retarget
    /// per tree edge" through guarded deltas of this counter.
    pub fn retarget_count() -> usize {
        mv_obs::counter::get(Counter::EvaluatorRetarget) as usize
    }

    /// Total [`IncrementalEvaluator::fork`] calls recorded by `mv-obs`
    /// so far.
    pub fn fork_count() -> usize {
        mv_obs::counter::get(Counter::EvaluatorFork) as usize
    }

    /// Clones the warm evaluator for a scenario-tree branch point: the
    /// copy carries every cache (answer arena, top-k tables, per-query
    /// minima, block sums) and continues independently. Counted in
    /// [`IncrementalEvaluator::fork_count`], *not* in
    /// [`IncrementalEvaluator::build_count`] — no O(n·m) rebuild happens.
    pub fn fork(&self) -> Self {
        mv_obs::inc(Counter::EvaluatorFork);
        self.clone()
    }

    fn build(problem: Cow<'p, SelectionProblem>) -> Self {
        mv_obs::inc(Counter::EvaluatorBuild);
        let m = problem.model().context().workload.len();
        let n = problem.len();
        let total: usize = problem
            .candidates()
            .iter()
            .map(|v| v.profile.answered())
            .sum();
        let transfer = problem.model().transfer_cost();
        let storage_intervals = storage_interval_template(&problem);
        let mut ev = IncrementalEvaluator {
            problem,
            selection: SelectionSet::empty(n),
            spans: Vec::with_capacity(n),
            arena_q: Vec::with_capacity(total),
            arena_t: Vec::with_capacity(total),
            dead: 0,
            top_view: vec![NONE; m * ANSWER_TOP_K],
            top_time: vec![Hours::ZERO; m * ANSWER_TOP_K],
            top_len: vec![0; m],
            pruned: vec![false; m],
            best_view: vec![NONE; m],
            best_time: vec![Hours::ZERO; m],
            second_view: vec![NONE; m],
            second_time: vec![Hours::ZERO; m],
            transfer,
            storage_intervals,
            block_time: vec![Hours::ZERO; m.div_ceil(TIME_FOLD_BLOCK)],
            block_dirty: vec![false; m.div_ceil(TIME_FOLD_BLOCK)],
            dirty_blocks: Vec::new(),
            all_dirty: true,
        };
        for k in 0..n {
            ev.push_span(k);
        }
        ev
    }

    /// Appends candidate `k`'s profile to the arena and offers its
    /// entries to the top-k tables. The span must not exist yet.
    fn push_span(&mut self, k: usize) {
        debug_assert_eq!(self.spans.len(), k);
        let start = self.arena_q.len();
        let profile = &self.problem.candidates()[k].profile;
        self.arena_q.extend_from_slice(profile.query_ids());
        self.arena_t.extend_from_slice(profile.times());
        self.spans.push(Span {
            start: u32::try_from(start).expect("arena fits in u32"),
            len: profile.answered() as u32,
        });
        let kk = k as u32;
        for idx in start..self.arena_q.len() {
            let (i, t) = (self.arena_q[idx] as usize, self.arena_t[idx]);
            self.topk_insert(i, kk, t);
        }
    }

    /// Builds an evaluator positioned at `selection`.
    pub fn with_selection(problem: &'p SelectionProblem, selection: &SelectionSet) -> Self {
        let mut ev = IncrementalEvaluator::new(problem);
        for k in selection.ones() {
            ev.flip(k);
        }
        ev
    }

    /// The underlying problem (borrowed or owned; reflects any dynamic
    /// candidate edits).
    pub fn problem(&self) -> &SelectionProblem {
        &self.problem
    }

    /// Consumes the evaluator, returning its problem — including every
    /// dynamic candidate edit. Clones only if the problem was still
    /// borrowed and never edited.
    pub fn into_problem(self) -> SelectionProblem {
        self.problem.into_owned()
    }

    // ------------------------------------------------------------------
    // Top-k pruned answer tables.
    // ------------------------------------------------------------------

    /// Offers `(v, t)` to query `i`'s top-k table, preserving the
    /// pruning invariant: **every answerer outside the table has a time
    /// ≥ the largest time inside it**. A table rescan that finds any
    /// selected member is therefore exact — no outsider can beat it —
    /// and an empty-handed rescan of a pruned table falls back to the
    /// exact sweep.
    ///
    /// Concretely: an unpruned table below capacity holds *all*
    /// answerers, so admission is unconditional. Otherwise the entry is
    /// admitted only if it does not exceed the current member maximum
    /// (evicting that maximum when full); a pruned *empty* table admits
    /// nobody, because the invariant then says nothing about the
    /// untracked outsiders.
    fn topk_insert(&mut self, i: usize, v: u32, t: Hours) {
        let base = i * ANSWER_TOP_K;
        let len = self.top_len[i] as usize;
        if !self.pruned[i] && len < ANSWER_TOP_K {
            self.top_view[base + len] = v;
            self.top_time[base + len] = t;
            self.top_len[i] = (len + 1) as u8;
            return;
        }
        self.pruned[i] = true;
        if len == 0 {
            return;
        }
        let (mut max_at, mut max_t) = (0, self.top_time[base]);
        for j in 1..len {
            if self.top_time[base + j] > max_t {
                max_at = j;
                max_t = self.top_time[base + j];
            }
        }
        if t > max_t {
            return;
        }
        if len < ANSWER_TOP_K {
            self.top_view[base + len] = v;
            self.top_time[base + len] = t;
            self.top_len[i] = (len + 1) as u8;
        } else {
            self.top_view[base + max_at] = v;
            self.top_time[base + max_at] = t;
        }
    }

    /// Drops view `v` from query `i`'s top-k table if present (it may
    /// legitimately be an untracked outsider).
    fn topk_remove(&mut self, i: usize, v: u32) {
        let base = i * ANSWER_TOP_K;
        let len = self.top_len[i] as usize;
        for j in 0..len {
            if self.top_view[base + j] == v {
                self.top_view[base + j] = self.top_view[base + len - 1];
                self.top_time[base + j] = self.top_time[base + len - 1];
                self.top_view[base + len - 1] = NONE;
                self.top_len[i] = (len - 1) as u8;
                return;
            }
        }
    }

    /// The answer time of view `k` for query `i`, by binary search over
    /// `k`'s arena span. O(log deg).
    fn span_time(&self, k: usize, i: u32) -> Option<Hours> {
        let span = self.spans[k];
        let (s, e) = (span.start as usize, (span.start + span.len) as usize);
        self.arena_q[s..e]
            .binary_search(&i)
            .ok()
            .map(|pos| self.arena_t[s + pos])
    }

    /// Finds the fastest selected view answering query `i`, excluding
    /// `except` (the current best). Scans the top-k table first — exact
    /// whenever it yields anyone, by the pruning invariant — and only
    /// falls back to the exact sweep over the selected views' spans when
    /// a pruned table comes up empty. Returns `(view, time)` with
    /// `view == NONE` for "nobody".
    fn rescan_runner_up(&self, i: usize, except: u32) -> (u32, Hours) {
        let base = i * ANSWER_TOP_K;
        let len = self.top_len[i] as usize;
        let (mut view, mut time) = (NONE, Hours::ZERO);
        for j in 0..len {
            let v = self.top_view[base + j];
            if v == except || !self.selection.contains(v as usize) {
                continue;
            }
            let t = self.top_time[base + j];
            if view == NONE || t < time {
                view = v;
                time = t;
            }
        }
        if view == NONE && self.pruned[i] {
            // Exact fallback: the pruned outsiders are untracked, so
            // sweep every selected view's span. Rare by construction —
            // it needs > ANSWER_TOP_K answerers of one query *and* none
            // of the k fastest selected.
            let iq = i as u32;
            for k in self.selection.ones() {
                if k as u32 == except {
                    continue;
                }
                if let Some(t) = self.span_time(k, iq) {
                    if view == NONE || t < time {
                        view = k as u32;
                        time = t;
                    }
                }
            }
        }
        (view, time)
    }

    // ------------------------------------------------------------------
    // Dynamic candidates.
    // ------------------------------------------------------------------

    /// Splices a new candidate into the evaluator — and into its problem —
    /// returning the new index. The view starts **deselected**; its span
    /// joins the arena and its entries are offered to the per-query
    /// top-k tables in O(deg), with no rebuild of the cached
    /// best/runner-up state. On a borrowed evaluator the first edit
    /// clones the problem (copy-on-write); [`IncrementalEvaluator::
    /// from_problem`] avoids even that.
    pub fn add_candidate(&mut self, charge: ViewCharge) -> usize {
        let k = self.problem.to_mut().push_candidate(charge);
        self.push_span(k);
        self.selection.push(false);
        k
    }

    /// Retires candidate `k`, returning its charge. If selected, it is
    /// deselected first (the `unflip` eviction leaves no best/runner-up
    /// slot pointing at the retired index). Indices follow
    /// `Vec::swap_remove` semantics: the last candidate takes index `k`
    /// (renumbered in the top-k tables and query caches); all other
    /// indices are stable. O(deg(k) + deg(last)); the abandoned arena
    /// span is reclaimed by a later compaction.
    pub fn remove_candidate(&mut self, k: usize) -> ViewCharge {
        let n = self.spans.len();
        assert!(k < n, "candidate {k} out of {n}");
        if self.selection.contains(k) {
            self.unflip(k);
        }
        let last = n - 1;
        let kk = k as u32;
        let span = self.spans[k];
        for idx in span.start as usize..(span.start + span.len) as usize {
            let i = self.arena_q[idx] as usize;
            self.topk_remove(i, kk);
        }
        self.dead += span.len as usize;
        if k != last {
            // The last candidate takes index k: renumber its table
            // entries and any cache slots currently naming it.
            let lk = last as u32;
            let lspan = self.spans[last];
            for idx in lspan.start as usize..(lspan.start + lspan.len) as usize {
                let i = self.arena_q[idx] as usize;
                let base = i * ANSWER_TOP_K;
                for j in 0..self.top_len[i] as usize {
                    if self.top_view[base + j] == lk {
                        self.top_view[base + j] = kk;
                    }
                }
                if self.best_view[i] == lk {
                    self.best_view[i] = kk;
                }
                if self.second_view[i] == lk {
                    self.second_view[i] = kk;
                }
            }
        }
        self.spans.swap_remove(k);
        self.selection.swap_remove(k);
        let charge = self.problem.to_mut().swap_remove_candidate(k);
        self.maybe_compact();
        charge
    }

    /// Re-prices candidate `k` in place — the epoch-boundary splice.
    ///
    /// The general form removes the view's entries from the top-k
    /// tables and splices the replacement's back in (evicting it from
    /// the caches around the edit, so a changed answer profile can
    /// never leave a stale best/runner-up slot). When only the
    /// *non-cached* attributes change — size, materialization,
    /// maintenance, exactly the carried-over re-pricing an epoch chain
    /// performs — the answer tables are untouched and the whole splice
    /// is the O(1) in-place replacement. Indices are stable either way,
    /// and the selection state of `k` is preserved. Returns the old
    /// charge.
    pub fn update_charge(&mut self, k: usize, charge: ViewCharge) -> ViewCharge {
        let n = self.spans.len();
        assert!(k < n, "candidate {k} out of {n}");
        mv_obs::inc(Counter::EvaluatorUpdateCharge);
        let same_answers = self.problem.candidates()[k].profile == charge.profile;
        if same_answers {
            mv_obs::inc(Counter::EvaluatorUpdateChargeFast);
            return self.problem.to_mut().replace_candidate(k, charge);
        }
        let was_selected = self.selection.contains(k);
        if was_selected {
            self.unflip(k);
        }
        let kk = k as u32;
        let span = self.spans[k];
        for idx in span.start as usize..(span.start + span.len) as usize {
            let i = self.arena_q[idx] as usize;
            self.topk_remove(i, kk);
        }
        self.dead += span.len as usize;
        let old = self.problem.to_mut().replace_candidate(k, charge);
        // Append the replacement profile as a fresh arena span.
        let start = self.arena_q.len();
        let profile = &self.problem.candidates()[k].profile;
        self.arena_q.extend_from_slice(profile.query_ids());
        self.arena_t.extend_from_slice(profile.times());
        self.spans[k] = Span {
            start: u32::try_from(start).expect("arena fits in u32"),
            len: profile.answered() as u32,
        };
        for idx in start..self.arena_q.len() {
            let (i, t) = (self.arena_q[idx] as usize, self.arena_t[idx]);
            self.topk_insert(i, kk, t);
        }
        if was_selected {
            self.flip(k);
        }
        self.maybe_compact();
        old
    }

    /// Rebuilds the arena without the abandoned spans once they
    /// outnumber the live entries (and amount to more than
    /// [`COMPACT_MIN_DEAD`]). Spans are rewritten in view order; the
    /// top-k tables and caches hold indices, not arena positions, so
    /// they survive untouched.
    fn maybe_compact(&mut self) {
        let live = self.arena_q.len() - self.dead;
        if self.dead <= COMPACT_MIN_DEAD || self.dead <= live {
            return;
        }
        let mut q = Vec::with_capacity(live);
        let mut t = Vec::with_capacity(live);
        for span in &mut self.spans {
            let (s, e) = (span.start as usize, (span.start + span.len) as usize);
            span.start = q.len() as u32;
            q.extend_from_slice(&self.arena_q[s..e]);
            t.extend_from_slice(&self.arena_t[s..e]);
        }
        self.arena_q = q;
        self.arena_t = t;
        self.dead = 0;
    }

    /// Swaps in a new costing model over the same workload shape — the
    /// epoch-boundary *context* switch. The per-query best/runner-up
    /// caches survive untouched: they hold only candidate answer times,
    /// which do not depend on the model, while base times and
    /// frequencies are read live from the model at snapshot time. Only
    /// the two selection-independent caches — the transfer cost and the
    /// storage-interval template — are recomputed, in O(m + inserts).
    pub fn retarget(&mut self, model: CloudCostModel) {
        mv_obs::inc(Counter::EvaluatorRetarget);
        self.problem.to_mut().set_model(model);
        self.transfer = self.problem.model().transfer_cost();
        self.storage_intervals = storage_interval_template(&self.problem);
        // Base times and frequencies may have changed under every block.
        self.all_dirty = true;
    }

    /// The current selection.
    pub fn selection(&self) -> &SelectionSet {
        &self.selection
    }

    /// Whether candidate `k` is currently selected.
    pub fn is_selected(&self, k: usize) -> bool {
        self.selection.contains(k)
    }

    /// Selects candidate `k` (must currently be deselected). O(deg).
    pub fn flip(&mut self, k: usize) {
        assert!(
            !self.selection.contains(k),
            "candidate {k} already selected"
        );
        mv_obs::inc(Counter::EvaluatorFlip);
        self.selection.set(k, true);
        let kk = k as u32;
        let span = self.spans[k];
        for idx in span.start as usize..(span.start + span.len) as usize {
            let i = self.arena_q[idx] as usize;
            let t = self.arena_t[idx];
            if self.best_view[i] == NONE || t < self.best_time[i] {
                self.second_view[i] = self.best_view[i];
                self.second_time[i] = self.best_time[i];
                self.best_view[i] = kk;
                self.best_time[i] = t;
                self.mark_time_dirty(i);
            } else if self.second_view[i] == NONE || t < self.second_time[i] {
                self.second_view[i] = kk;
                self.second_time[i] = t;
            }
        }
    }

    /// Deselects candidate `k` (must currently be selected). O(deg)
    /// unless `k` was a query's best or runner-up, in which case that
    /// query's top-k table is rescanned (exact fallback only on pruned
    /// tables that come up empty).
    pub fn unflip(&mut self, k: usize) {
        assert!(self.selection.contains(k), "candidate {k} not selected");
        mv_obs::inc(Counter::EvaluatorUnflip);
        self.selection.set(k, false);
        let kk = k as u32;
        let span = self.spans[k];
        for idx in span.start as usize..(span.start + span.len) as usize {
            let i = self.arena_q[idx] as usize;
            if self.best_view[i] == kk {
                let (sv, st) = (self.second_view[i], self.second_time[i]);
                self.best_view[i] = sv;
                self.best_time[i] = st;
                self.mark_time_dirty(i);
                if sv == NONE {
                    self.second_view[i] = NONE;
                    self.second_time[i] = Hours::ZERO;
                } else {
                    let (nv, nt) = self.rescan_runner_up(i, sv);
                    self.second_view[i] = nv;
                    self.second_time[i] = nt;
                }
            } else if self.second_view[i] == kk {
                let (nv, nt) = self.rescan_runner_up(i, self.best_view[i]);
                self.second_view[i] = nv;
                self.second_time[i] = nt;
            }
        }
    }

    /// Toggles candidate `k` regardless of current state.
    pub fn toggle(&mut self, k: usize) {
        if self.selection.contains(k) {
            self.unflip(k);
        } else {
            self.flip(k);
        }
    }

    /// Effective time of query `i` under the current selection: the
    /// cached best selected view, else the query's base time. O(1).
    pub fn query_time(&self, i: usize) -> Hours {
        let base = self.problem.model().context().workload[i].base_time;
        if self.best_view[i] == NONE {
            base
        } else {
            base.min(self.best_time[i])
        }
    }

    /// Marks query `i`'s time-fold block stale (its best selected view
    /// changed). O(1).
    fn mark_time_dirty(&mut self, i: usize) {
        if self.all_dirty {
            return;
        }
        let b = i / TIME_FOLD_BLOCK;
        if !self.block_dirty[b] {
            self.block_dirty[b] = true;
            self.dirty_blocks.push(b as u32);
        }
    }

    /// Refolds `block_time[b]` from the per-query caches, in workload
    /// order from an exact zero — the same inner fold as
    /// `CloudCostModel::processing_time_with_views`.
    fn refold_block(&mut self, b: usize) {
        let workload = &self.problem.model().context().workload;
        let start = b * TIME_FOLD_BLOCK;
        let end = (start + TIME_FOLD_BLOCK).min(workload.len());
        let mut block = Hours::ZERO;
        for (i, q) in workload.iter().enumerate().take(end).skip(start) {
            let base = q.base_time;
            let t = if self.best_view[i] == NONE {
                base
            } else {
                base.min(self.best_time[i])
            };
            block += t * q.frequency;
        }
        self.block_time[b] = block;
    }

    /// Brings every stale block sum up to date. Telemetry records the
    /// dirty-delta size (blocks refolded) per refresh.
    fn refresh_time_blocks(&mut self) {
        if mv_obs::enabled() {
            let dirty = if self.all_dirty {
                self.block_time.len()
            } else {
                self.dirty_blocks.len()
            };
            mv_obs::record(Hist::SnapshotDirtyBlocks, dirty as u64);
        }
        if self.all_dirty {
            for b in 0..self.block_time.len() {
                self.refold_block(b);
            }
            self.all_dirty = false;
            for idx in 0..self.dirty_blocks.len() {
                self.block_dirty[self.dirty_blocks[idx] as usize] = false;
            }
            self.dirty_blocks.clear();
            return;
        }
        while let Some(b) = self.dirty_blocks.pop() {
            self.block_dirty[b as usize] = false;
            self.refold_block(b as usize);
        }
    }

    /// Frequency-weighted total processing time (Formula 9 summed)
    /// through the canonical blocked fold: stale block sums refold from
    /// the per-query caches (each in workload order from an exact zero)
    /// and the total folds the block sums in order — exactly the
    /// arithmetic of `processing_time_with_views`, so the result is
    /// bit-identical. O(m/B + B·dirty) per probe instead of O(m).
    pub fn processing_time(&mut self) -> Hours {
        self.refresh_time_blocks();
        let mut total = Hours::ZERO;
        for &block in &self.block_time {
            total += block;
        }
        total
    }

    /// Full [`Evaluation`] of the current selection, agreeing exactly
    /// with [`SelectionProblem::evaluate`]. O(selected + m/B + B·dirty):
    /// the processing-time total is a dirty-delta refold over the cached
    /// block sums, not a full O(m) sweep.
    ///
    /// Exactness: the time total is summed in workload order and the
    /// per-candidate totals in candidate order — the same fold orders as
    /// the model's own aggregation; compute components go through
    /// `CloudCostModel::compute_cost` (the routine `with_views` uses);
    /// the transfer cost is selection-independent and cached; and the
    /// storage cost replays the model's interval/size chain over the
    /// precomputed template, so every `f64` operation matches
    /// `storage_cost_with_extra` bit for bit — without rebuilding (and
    /// re-allocating) a `StorageTimeline` per probe.
    pub fn snapshot(&mut self) -> Evaluation {
        mv_obs::inc(Counter::EvaluatorSnapshot);
        let time = self.processing_time();
        let model = self.problem.model();
        let candidates = self.problem.candidates();
        // One fused pass over the selected candidates; each accumulator
        // folds in ascending candidate order from its zero, exactly like
        // the model's separate `.sum()` calls.
        let mut maintenance = Hours::ZERO;
        let mut materialization = Hours::ZERO;
        let mut views_size = Gb::ZERO;
        for k in self.selection.ones() {
            let v = &candidates[k];
            // `+=` delegates to the same float add as `a + b`, so the fold
            // stays bit-identical to the model's `.sum()`.
            maintenance += v.maintenance;
            materialization += v.materialization;
            views_size += v.size;
        }
        Evaluation {
            time,
            breakdown: CostBreakdown {
                transfer: self.transfer,
                compute_processing: model.compute_cost(time),
                compute_maintenance: model.compute_cost(maintenance),
                compute_materialization: model.compute_cost(materialization),
                storage: self.storage_cost(views_size),
            },
            selection: self.selection.clone(),
        }
    }

    /// [`IncrementalEvaluator::snapshot`] with every block sum forced
    /// stale first — the full O(n + m) fold the dirty-delta path
    /// replaces. Exists as the benchmark reference (`--bench scale`
    /// races the two) and as a self-check handle; results are identical.
    pub fn snapshot_cold(&mut self) -> Evaluation {
        self.all_dirty = true;
        self.snapshot()
    }

    /// Storage cost of dataset + inserts + `extra` over the billing
    /// period, replaying the model's timeline arithmetic over the
    /// precomputed interval template (no allocation).
    fn storage_cost(&self, extra: Gb) -> Money {
        let ctx = self.problem.model().context();
        // The size chain: (dataset + extra), then each insert in order —
        // the identical float-add sequence `StorageTimeline` records.
        let mut size = ctx.dataset_size + extra;
        let mut applied = 0;
        let mut total = Money::ZERO;
        for &(inserts_applied, duration) in &self.storage_intervals {
            while applied < inserts_applied {
                size += ctx.inserts[applied].1;
                applied += 1;
            }
            total += ctx.pricing.storage.cost(size, duration);
        }
        total
    }
}

/// Precomputes the billable-interval structure of the problem's storage
/// timeline: for each interval, how many insert events precede it and
/// how long it lasts. Mirrors `StorageTimeline::intervals` (same-instant
/// coalescing, horizon clamping, zero-length skipping), which is
/// selection-independent — only interval *sizes* depend on the selected
/// views, via the size chain replayed in
/// [`IncrementalEvaluator::storage_cost`].
fn storage_interval_template(problem: &SelectionProblem) -> Vec<(usize, Months)> {
    let ctx = problem.model().context();
    let horizon = ctx.months;
    // Points: (time, inserts applied up to and including this point),
    // coalescing same-instant events exactly like `StorageTimeline`.
    let mut points: Vec<(Months, usize)> = vec![(Months::ZERO, 0)];
    for (idx, (at, _)) in ctx.inserts.iter().enumerate() {
        let last = points.last_mut().expect("points never empty");
        if at.value() == last.0.value() {
            last.1 = idx + 1;
        } else {
            points.push((*at, idx + 1));
        }
    }
    let mut out = Vec::with_capacity(points.len());
    for (i, (start, applied)) in points.iter().enumerate() {
        if start.value() >= horizon.value() {
            break;
        }
        let end = points
            .get(i + 1)
            .map(|(t, _)| t.min(horizon))
            .unwrap_or(horizon);
        if end.value() > start.value() {
            out.push((*applied, end - *start));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_like_problem, random_problem};

    #[test]
    fn empty_matches_baseline() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        assert_eq!(ev.snapshot(), p.baseline());
    }

    #[test]
    fn single_flips_match_evaluate() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        for k in 0..p.len() {
            ev.flip(k);
            let mut sel = SelectionSet::empty(p.len());
            sel.set(k, true);
            assert_eq!(ev.snapshot(), p.evaluate(&sel), "flip {k}");
            ev.unflip(k);
            assert_eq!(ev.snapshot(), p.baseline(), "unflip {k}");
        }
    }

    #[test]
    fn random_walks_match_evaluate() {
        for seed in 0..10 {
            let p = random_problem(seed, 4, 8);
            let mut ev = IncrementalEvaluator::new(&p);
            let mut sel = SelectionSet::empty(p.len());
            // Deterministic pseudo-random flip sequence.
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            for step in 0..64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let k = (state as usize) % p.len();
                ev.toggle(k);
                sel.set(k, !sel.contains(k));
                assert_eq!(ev.snapshot(), p.evaluate(&sel), "seed {seed} step {step}");
            }
        }
    }

    /// More answerers per query than `ANSWER_TOP_K` slots: the pruned
    /// tables must stay exact through flips and unflips (the fallback
    /// sweep path).
    #[test]
    fn pruned_tables_stay_exact_past_top_k() {
        for seed in 0..5 {
            // 20 candidates over 2 queries at ~60% density ⇒ ~12
            // answerers per query, well past the 8 table slots.
            let p = random_problem(seed + 300, 2, 20);
            let mut ev = IncrementalEvaluator::new(&p);
            let mut sel = SelectionSet::empty(p.len());
            let mut state = seed.wrapping_mul(0x2545f4914f6cdd1d) | 1;
            for step in 0..128 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let k = (state as usize) % p.len();
                ev.toggle(k);
                sel.set(k, !sel.contains(k));
                assert_eq!(ev.snapshot(), p.evaluate(&sel), "seed {seed} step {step}");
            }
        }
    }

    #[test]
    fn with_selection_positions_correctly() {
        let p = paper_like_problem();
        let sel = SelectionSet::from_mask(0b0101, p.len());
        let mut ev = IncrementalEvaluator::with_selection(&p, &sel);
        assert_eq!(ev.snapshot(), p.evaluate(&sel));
        assert!(ev.is_selected(0) && ev.is_selected(2));
        assert!(!ev.is_selected(1));
    }

    #[test]
    fn add_candidate_matches_grown_problem() {
        let p = paper_like_problem();
        let m = p.model().context().workload.len();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.flip(1);
        let v = ViewCharge::new("v-dyn", Gb::new(0.2), Hours::new(0.1), Hours::new(0.01), m)
            .answers(1, Hours::new(0.001))
            .answers(2, Hours::new(0.002));
        let k = ev.add_candidate(v);
        assert_eq!(k, 4);
        assert_eq!(ev.problem().len(), 5);
        // Parity with full evaluation of the grown problem, before and
        // after selecting the newcomer.
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
        ev.flip(k);
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
        ev.unflip(k);
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
        // The borrowed source problem is untouched (copy-on-write).
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn from_problem_grows_from_zero_candidates() {
        let p = paper_like_problem();
        let mut ev =
            IncrementalEvaluator::from_problem(SelectionProblem::new(p.model().clone(), vec![]));
        let base = p.baseline();
        assert_eq!(ev.snapshot().time, base.time);
        assert_eq!(ev.snapshot().breakdown, base.breakdown);
        // Stream the static problem's candidates in one at a time,
        // selecting each; parity must hold at every step.
        for (k, v) in p.candidates().iter().enumerate() {
            let got = ev.add_candidate(v.clone());
            assert_eq!(got, k);
            ev.flip(k);
            assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
        }
        // Fully grown, the owned problem is the static problem.
        let full = p.evaluate(&SelectionSet::full(p.len()));
        assert_eq!(ev.snapshot(), full);
    }

    #[test]
    fn remove_candidate_swap_renumbers_and_matches() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.flip(0);
        ev.flip(2);
        ev.flip(3);
        // Retire the deselected middle candidate: the last one (selected)
        // takes its slot.
        let removed = ev.remove_candidate(1);
        assert_eq!(removed.name, "v-month-country");
        assert_eq!(ev.problem().len(), 3);
        assert_eq!(ev.selection().ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
        // Independent cross-check: rebuild the equivalent static problem.
        let mirror = SelectionProblem::new(
            p.model().clone(),
            vec![
                p.candidates()[0].clone(),
                p.candidates()[3].clone(),
                p.candidates()[2].clone(),
            ],
        );
        assert_eq!(ev.snapshot(), mirror.evaluate(&SelectionSet::full(3)));
        // Remove a *selected* candidate: auto-deselects first.
        ev.remove_candidate(0);
        assert_eq!(ev.problem().len(), 2);
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
    }

    /// Regression: retiring the **last, selected** candidate must evict it
    /// from every per-query cache — no best/runner-up slot may keep
    /// naming the retired index (it would alias whichever view is moved
    /// into that slot next, silently corrupting probes).
    #[test]
    fn remove_last_selected_leaves_no_stale_runner_up() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        for k in 0..p.len() {
            ev.flip(k);
        }
        let last = p.len() - 1;
        let lk = last as u32;
        // Precondition: the retiring index really is cached somewhere
        // (v-bulky answers Q3 slower than v-day-region, so it is Q3's
        // runner-up).
        assert!(ev
            .best_view
            .iter()
            .zip(&ev.second_view)
            .any(|(&b, &s)| b == lk || s == lk));
        ev.remove_candidate(last);
        let n = ev.spans.len();
        for i in 0..ev.best_view.len() {
            // Every surviving slot either holds the NONE sentinel or a
            // live index — never the retired one.
            assert!(
                ev.best_view[i] == NONE || (ev.best_view[i] as usize) < n,
                "query {i}: stale best {}",
                ev.best_view[i]
            );
            assert!(
                ev.second_view[i] == NONE || (ev.second_view[i] as usize) < n,
                "query {i}: stale runner-up {}",
                ev.second_view[i]
            );
        }
        // Q3's runner-up specifically collapsed to the NONE sentinel: only
        // v-day-region (still index 2) answers it now.
        assert_eq!(ev.best_view[2], 2);
        assert_eq!(ev.second_view[2], NONE);
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
        // A fresh unflip of the moved-into-place views still behaves.
        ev.unflip(2);
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
    }

    #[test]
    fn remove_then_add_reuses_slots_consistently() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        for k in 0..p.len() {
            ev.flip(k);
        }
        let charge = ev.remove_candidate(0);
        let k = ev.add_candidate(charge);
        assert_eq!(k, p.len() - 1);
        ev.flip(k);
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
        // The processing time matches the all-selected static evaluation
        // exactly: per-query minima are order-independent and the time
        // fold runs in workload order. (The per-candidate cost folds run
        // in the *permuted* candidate order, so only the equivalent
        // problem — not the original — is the bit-exact reference.)
        let full = p.evaluate(&SelectionSet::full(p.len()));
        assert_eq!(ev.snapshot().time, full.time);
    }

    /// Heavy churn crosses the arena's compaction threshold; parity and
    /// span integrity must survive the rebuild.
    #[test]
    fn arena_compaction_preserves_parity() {
        let p = random_problem(7, 4, 6);
        let mut ev = IncrementalEvaluator::new(&p);
        ev.flip(0);
        ev.flip(3);
        // Enough add/remove cycles to push `dead` past COMPACT_MIN_DEAD.
        let mut spin = 0usize;
        for round in 0..800 {
            let charge = p.candidates()[round % p.len()].clone();
            let k = ev.add_candidate(charge);
            if round % 3 == 0 {
                ev.flip(k);
                spin += 1;
            }
            let victim = (round * 5) % ev.problem().len();
            ev.remove_candidate(victim);
            if spin.is_multiple_of(7) {
                assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
            }
        }
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
    }

    #[test]
    fn update_charge_reprices_in_place() {
        // The epoch-boundary fast path: same answer profile, different
        // materialization. Indices, selection and caches all survive.
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.flip(1);
        ev.flip(2);
        let carried = p.candidates()[1].carried();
        let old = ev.update_charge(1, carried.clone());
        assert_eq!(old, p.candidates()[1]);
        assert!(ev.is_selected(1) && ev.is_selected(2));
        // Parity with a from-scratch problem holding the carried charge.
        let mut mirror_charges: Vec<ViewCharge> = p.candidates().to_vec();
        mirror_charges[1] = carried;
        let mirror = SelectionProblem::new(p.model().clone(), mirror_charges);
        assert_eq!(ev.snapshot(), mirror.evaluate(ev.selection()));
        // Restore full price: back to the original problem bit-for-bit.
        ev.update_charge(1, p.candidates()[1].clone());
        assert_eq!(ev.snapshot(), p.evaluate(ev.selection()));
    }

    #[test]
    fn update_charge_with_new_answer_profile_resplices() {
        let p = paper_like_problem();
        let m = p.model().context().workload.len();
        let mut ev = IncrementalEvaluator::new(&p);
        for k in 0..p.len() {
            ev.flip(k);
        }
        // Replace the all-query view with one answering only Q3, slower:
        // every query's best/runner-up must be rebuilt correctly.
        let replacement = ViewCharge::new(
            "v-day-region-degraded",
            Gb::new(0.9),
            Hours::new(0.3),
            Hours::new(0.06),
            m,
        )
        .answers(2, Hours::new(0.05));
        ev.update_charge(2, replacement.clone());
        assert!(ev.is_selected(2), "selection preserved across resplice");
        let mut mirror_charges: Vec<ViewCharge> = p.candidates().to_vec();
        mirror_charges[2] = replacement;
        let mirror = SelectionProblem::new(p.model().clone(), mirror_charges);
        assert_eq!(ev.snapshot(), mirror.evaluate(ev.selection()));
        // Subsequent flips still behave (no stale cache slots).
        ev.unflip(0);
        assert_eq!(ev.snapshot(), ev.problem().evaluate(ev.selection()));
    }

    #[test]
    fn retarget_swaps_the_model_and_keeps_caches() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.flip(0);
        ev.flip(2);
        // Next epoch: double Q2's frequency, halve the storage horizon.
        let mut ctx = p.model().context().clone();
        ctx.workload[1].frequency = 2.0;
        ctx.months = Months::new(0.5);
        let epoch_model = CloudCostModel::new(ctx);
        ev.retarget(epoch_model.clone());
        let mirror = SelectionProblem::new(epoch_model, p.candidates().to_vec());
        assert_eq!(ev.snapshot(), mirror.evaluate(ev.selection()));
        // Flips after the retarget stay bit-exact too.
        ev.flip(1);
        assert_eq!(ev.snapshot(), mirror.evaluate(ev.selection()));
    }

    #[test]
    #[should_panic(expected = "workload length")]
    fn retarget_rejects_misaligned_model() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        let mut ctx = p.model().context().clone();
        ctx.workload.pop();
        ev.retarget(CloudCostModel::new(ctx));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn remove_out_of_range_panics() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.remove_candidate(4);
    }

    #[test]
    #[should_panic(expected = "query times")]
    fn add_misaligned_candidate_panics() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.add_candidate(ViewCharge::new(
            "v-bad",
            Gb::new(0.1),
            Hours::new(0.1),
            Hours::new(0.0),
            7,
        ));
    }

    #[test]
    #[should_panic(expected = "already selected")]
    fn double_flip_panics() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.flip(0);
        ev.flip(0);
    }

    #[test]
    #[should_panic(expected = "not selected")]
    fn unflip_unselected_panics() {
        let p = paper_like_problem();
        let mut ev = IncrementalEvaluator::new(&p);
        ev.unflip(0);
    }
}
