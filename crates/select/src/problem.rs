//! The view-selection problem instance.

use mv_cost::{CloudCostModel, CostBreakdown, SelectionSet, ViewCharge};
use mv_units::{Hours, Money};

/// A fully-evaluated selection: the true (non-linearized) processing time
/// and cost breakdown under the paper's interaction model — each query is
/// answered by the fastest selected view able to serve it.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Which candidates are materialized.
    pub selection: SelectionSet,
    /// `TprocessingQ` under the selection (Formula 9).
    pub time: Hours,
    /// Formula 1/6 cost decomposition.
    pub breakdown: CostBreakdown,
}

impl Evaluation {
    /// Total monetary cost `C`.
    pub fn cost(&self) -> Money {
        self.breakdown.total()
    }

    /// Number of selected views.
    pub fn num_selected(&self) -> usize {
        self.selection.count_ones()
    }
}

/// A selection problem: the costing model plus the candidate views output
/// by the generation step (the paper's `V_cand`).
#[derive(Debug, Clone)]
pub struct SelectionProblem {
    model: CloudCostModel,
    candidates: Vec<ViewCharge>,
}

impl SelectionProblem {
    /// Builds a problem. Candidate `query_times` vectors must align with
    /// the model's workload.
    pub fn new(model: CloudCostModel, candidates: Vec<ViewCharge>) -> Self {
        let m = model.context().workload.len();
        for c in &candidates {
            assert_eq!(
                c.profile.workload_len(),
                m,
                "candidate {} has {} query times for a {}-query workload",
                c.name,
                c.profile.workload_len(),
                m
            );
        }
        SelectionProblem { model, candidates }
    }

    /// The costing model.
    pub fn model(&self) -> &CloudCostModel {
        &self.model
    }

    /// The candidate views.
    pub fn candidates(&self) -> &[ViewCharge] {
        &self.candidates
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// `true` when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Appends a candidate view, returning its index. Used by the dynamic
    /// evaluator's `add_candidate` splice; the charge must align with the
    /// model's workload.
    pub fn push_candidate(&mut self, charge: ViewCharge) -> usize {
        let m = self.model.context().workload.len();
        assert_eq!(
            charge.profile.workload_len(),
            m,
            "candidate {} has {} query times for a {}-query workload",
            charge.name,
            charge.profile.workload_len(),
            m
        );
        self.candidates.push(charge);
        self.candidates.len() - 1
    }

    /// Replaces candidate `k`'s charge in place (indices are stable),
    /// returning the old charge. The replacement must align with the
    /// model's workload. Used by the epoch chain to re-price a carried
    /// view at an epoch boundary without disturbing the pool order.
    pub fn replace_candidate(&mut self, k: usize, charge: ViewCharge) -> ViewCharge {
        let m = self.model.context().workload.len();
        assert_eq!(
            charge.profile.workload_len(),
            m,
            "candidate {} has {} query times for a {}-query workload",
            charge.name,
            charge.profile.workload_len(),
            m
        );
        std::mem::replace(&mut self.candidates[k], charge)
    }

    /// Swaps in a new costing model over the *same workload shape*: the
    /// query count must match so every candidate's `query_times` stays
    /// aligned. Per-query frequencies, base times, pricing, horizon and
    /// dataset size may all differ — that is exactly what changes between
    /// epochs of a billing horizon.
    pub fn set_model(&mut self, model: CloudCostModel) {
        assert_eq!(
            model.context().workload.len(),
            self.model.context().workload.len(),
            "replacement model must keep the workload length"
        );
        self.model = model;
    }

    /// Removes candidate `k` by swapping the last candidate into its slot
    /// (`Vec::swap_remove` semantics — only the last index is renumbered),
    /// returning the removed charge. Selections over the old index space
    /// must be remapped by the caller ([`mv_cost::SelectionSet::swap_remove`]
    /// applies the matching transform).
    pub fn swap_remove_candidate(&mut self, k: usize) -> ViewCharge {
        self.candidates.swap_remove(k)
    }

    /// Evaluates a selection under the true interaction model.
    pub fn evaluate(&self, selection: &SelectionSet) -> Evaluation {
        assert_eq!(selection.len(), self.candidates.len());
        Evaluation {
            time: self
                .model
                .processing_time_with_views(&self.candidates, selection),
            breakdown: self.model.with_views(&self.candidates, selection),
            selection: selection.clone(),
        }
    }

    /// The empty selection (the paper's "without materialized views"
    /// baseline).
    pub fn baseline(&self) -> Evaluation {
        self.evaluate(&SelectionSet::empty(self.candidates.len()))
    }

    /// Linearized per-view deltas used by the paper's knapsack formulation:
    /// `(time saved, cost delta)` of adding view `k` to the *empty*
    /// selection. Interactions (two views serving the same query) make the
    /// sum of these deltas an optimistic estimate — the knapsack solver
    /// repairs against [`SelectionProblem::evaluate`] afterwards.
    pub fn linearized_deltas(&self) -> Vec<(Hours, Money)> {
        let baseline = self.baseline();
        let mut ev = crate::IncrementalEvaluator::new(self);
        (0..self.candidates.len())
            .map(|k| {
                ev.flip(k);
                let e = ev.snapshot();
                ev.unflip(k);
                (
                    baseline.time.saturating_sub(e.time),
                    e.cost() - baseline.cost(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_like_problem;
    use mv_units::Gb;

    #[test]
    fn baseline_has_no_views() {
        let p = paper_like_problem();
        let base = p.baseline();
        assert_eq!(base.num_selected(), 0);
        assert_eq!(base.time, p.model().context().base_processing_time());
    }

    #[test]
    fn evaluate_uses_best_view_per_query() {
        let p = paper_like_problem();
        let all = SelectionSet::full(p.len());
        let e = p.evaluate(&all);
        assert!(e.time < p.baseline().time);
        assert_eq!(e.num_selected(), p.len());
    }

    #[test]
    fn linearized_deltas_have_nonnegative_savings() {
        let p = paper_like_problem();
        for (saving, _) in p.linearized_deltas() {
            assert!(saving >= Hours::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "query times")]
    fn misaligned_candidate_panics() {
        let p = paper_like_problem();
        let mut bad = p.candidates()[0].clone();
        bad.profile = mv_cost::AnswerProfile::none(p.model().context().workload.len() + 1);
        SelectionProblem::new(p.model().clone(), vec![bad]);
    }

    #[test]
    fn evaluation_accessors() {
        let p = paper_like_problem();
        let e = p.baseline();
        assert_eq!(e.cost(), e.breakdown.total());
        assert!(e.cost() > mv_units::Money::ZERO);
        assert!(p.candidates()[0].size > Gb::ZERO);
        assert!(!p.is_empty());
    }
}
