//! The (time, cost) solution space and its Pareto frontier.
//!
//! The paper's Figures 2–4 sketch the solution space of each scenario as a
//! scatter of (processing time, monetary cost) points with the chosen
//! solution highlighted. This module regenerates that picture exactly:
//! every subset's true evaluation, the non-dominated frontier, and an
//! ASCII rendering for the `solution_space` experiment binary.
//!
//! Enumeration runs through the [`crate::IncrementalEvaluator`] in ascending
//! mask order (amortized two O(m) flips per subset instead of an
//! O(n·m) re-evaluation), and fans out across threads above
//! [`crate::exhaustive::PARALLEL_THRESHOLD`] candidates — each thread
//! sweeps a contiguous mask range with its own evaluator and the chunks
//! are concatenated in order, so the output is identical to the serial
//! sweep for any thread count.

use mv_cost::SelectionSet;
use mv_units::{Hours, Money};

use crate::{Evaluation, SelectionProblem};

/// One point of the solution space.
#[derive(Debug, Clone)]
pub struct SpacePoint {
    /// The subset, encoded as a bitmask over the candidate list.
    pub mask: u64,
    /// True processing time of the subset.
    pub time: Hours,
    /// True total cost of the subset.
    pub cost: Money,
    /// Whether the point is Pareto-optimal (no other point is faster and
    /// cheaper).
    pub on_frontier: bool,
}

/// Enumerates the full solution space (≤ 20 candidates) with frontier
/// marking, sorted by time ascending. Thread count is chosen
/// automatically; see [`solution_space_with_threads`].
pub fn solution_space(problem: &SelectionProblem) -> Vec<SpacePoint> {
    solution_space_with_threads(problem, crate::sweep::auto_threads(problem.len()))
}

/// [`solution_space`] with an explicit thread count (1 = serial). The
/// result is identical for every thread count.
pub fn solution_space_with_threads(problem: &SelectionProblem, threads: usize) -> Vec<SpacePoint> {
    let n = problem.len();
    assert!(n <= 20, "solution space over {n} candidates is too large");
    let total: u64 = 1u64 << n;
    let threads = threads.max(1).min(total as usize);

    let chunks = crate::sweep::chunked(total, threads, |lo, hi| {
        let mut out = Vec::with_capacity((hi - lo) as usize);
        crate::sweep::sweep_masks(problem, lo, hi, |mask, ev| {
            let e = ev.snapshot();
            out.push(SpacePoint {
                mask,
                time: e.time,
                cost: e.cost(),
                on_frontier: false,
            });
        });
        out
    });
    let mut points: Vec<SpacePoint> = chunks.into_iter().flatten().collect();

    points.sort_by(|a, b| a.time.cmp_total(b.time).then(a.cost.cmp(&b.cost)));
    // Sweep: a point is on the frontier iff its cost is strictly below
    // every earlier (faster-or-equal) point's cost.
    let mut best_cost = Money::MAX;
    for p in &mut points {
        if p.cost < best_cost {
            p.on_frontier = true;
            best_cost = p.cost;
        }
    }
    points
}

/// Only the Pareto-optimal points, sorted by time.
pub fn frontier(problem: &SelectionProblem) -> Vec<SpacePoint> {
    solution_space(problem)
        .into_iter()
        .filter(|p| p.on_frontier)
        .collect()
}

/// Renders the space as an ASCII scatter (time on x, cost on y), marking
/// frontier points `o`, dominated points `·`, and `highlight_mask` (the
/// scenario's chosen solution) `X`.
pub fn render_ascii(
    points: &[SpacePoint],
    highlight_mask: u64,
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 10 && height >= 5, "canvas too small");
    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut cmin, mut cmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        tmin = tmin.min(p.time.value());
        tmax = tmax.max(p.time.value());
        cmin = cmin.min(p.cost.to_dollars_f64());
        cmax = cmax.max(p.cost.to_dollars_f64());
    }
    let tspan = (tmax - tmin).max(1e-12);
    let cspan = (cmax - cmin).max(1e-12);
    let mut canvas = vec![vec![' '; width]; height];
    let place = |v: f64, lo: f64, span: f64, cells: usize| -> usize {
        (((v - lo) / span) * (cells - 1) as f64).round() as usize
    };
    // Draw dominated first so frontier and highlight overwrite them.
    for pass in 0..3 {
        for p in points {
            let glyph = if p.mask == highlight_mask {
                'X'
            } else if p.on_frontier {
                'o'
            } else {
                '·'
            };
            let order = match glyph {
                '·' => 0,
                'o' => 1,
                _ => 2,
            };
            if order != pass {
                continue;
            }
            let x = place(p.time.value(), tmin, tspan, width);
            // Cost grows upward: invert the row index.
            let y = height - 1 - place(p.cost.to_dollars_f64(), cmin, cspan, height);
            canvas[y][x] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("cost ${cmax:.2}\n"));
    for row in canvas {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "  +{}\n   ${cmin:.2}  time {tmin:.3}h → {tmax:.3}h   (o frontier · dominated X chosen)",
        "-".repeat(width)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_like_problem, random_problem};

    #[test]
    fn space_has_all_subsets() {
        let p = paper_like_problem();
        let pts = solution_space(&p);
        assert_eq!(pts.len(), 1 << p.len());
        // Masks are unique.
        let mut masks: Vec<u64> = pts.iter().map(|p| p.mask).collect();
        masks.sort();
        masks.dedup();
        assert_eq!(masks.len(), pts.len());
    }

    #[test]
    fn incremental_points_match_full_evaluation() {
        let p = random_problem(5, 3, 7);
        for pt in solution_space(&p) {
            let e = p.evaluate(&SelectionSet::from_mask(pt.mask, p.len()));
            assert_eq!(pt.time, e.time, "mask {}", pt.mask);
            assert_eq!(pt.cost, e.cost(), "mask {}", pt.mask);
        }
    }

    #[test]
    fn threaded_space_matches_serial() {
        let p = random_problem(11, 4, 8);
        let serial = solution_space_with_threads(&p, 1);
        for threads in [2, 5] {
            let par = solution_space_with_threads(&p, threads);
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.mask, b.mask);
                assert_eq!(a.time, b.time);
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.on_frontier, b.on_frontier);
            }
        }
    }

    #[test]
    fn frontier_is_nondominated_and_sorted() {
        let p = paper_like_problem();
        let f = frontier(&p);
        assert!(!f.is_empty());
        for w in f.windows(2) {
            // Time strictly increases, cost strictly decreases.
            assert!(w[0].time < w[1].time);
            assert!(w[0].cost > w[1].cost);
        }
        // No point in the space strictly dominates a frontier point.
        let all = solution_space(&p);
        for fp in &f {
            for q in &all {
                let weakly_dominates = q.time <= fp.time && q.cost <= fp.cost;
                let strictly_better = q.time < fp.time || q.cost < fp.cost;
                assert!(
                    !(weakly_dominates && strictly_better),
                    "frontier point dominated by mask {}",
                    q.mask
                );
            }
        }
    }

    #[test]
    fn empty_and_full_masks_present() {
        let p = paper_like_problem();
        let pts = solution_space(&p);
        assert!(pts.iter().any(|pt| pt.mask == 0));
        assert!(pts.iter().any(|pt| pt.mask == (1 << p.len()) - 1));
    }

    #[test]
    fn ascii_rendering_contains_markers() {
        let p = paper_like_problem();
        let pts = solution_space(&p);
        let chosen = pts.iter().find(|pt| pt.on_frontier).unwrap().mask;
        let text = render_ascii(&pts, chosen, 40, 12);
        assert!(text.contains('X'));
        assert!(text.contains('o') || text.contains('·'));
        assert!(text.contains("time"));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_panics() {
        let p = paper_like_problem();
        let pts = solution_space(&p);
        render_ascii(&pts, 0, 2, 2);
    }
}

/// Solves any scenario directly from the enumerated solution space — every
/// constrained optimum lies on the Pareto frontier, so scanning the space
/// is a complete (if exponential) solver. Exists as an independent
/// cross-check of [`crate::solve_exhaustive`]: the two must always agree
/// (property-tested), and disagreement would indicate a bug in either the
/// frontier sweep or the scenario ordering. Deliberately re-evaluates
/// every subset through [`SelectionProblem::evaluate`] — the slow,
/// non-incremental path — so it also cross-checks the evaluator.
pub fn solve_via_space(problem: &SelectionProblem, scenario: crate::Scenario) -> crate::Outcome {
    let baseline = problem.baseline();
    let n = problem.len();
    let mut best: Option<Evaluation> = None;
    for p in solution_space(problem) {
        let e = problem.evaluate(&SelectionSet::from_mask(p.mask, n));
        let better = match &best {
            None => true,
            Some(b) => scenario.better(&e, b, &baseline),
        };
        if better {
            best = Some(e);
        }
    }
    crate::Outcome::new(
        best.unwrap_or_else(|| baseline.clone()),
        baseline,
        scenario,
        crate::SolverKind::Exhaustive,
    )
}

#[cfg(test)]
mod space_solver_tests {
    use super::*;
    use crate::fixtures::{paper_like_problem, random_problem};
    use crate::{solve_exhaustive, Scenario};
    use mv_units::{Hours, Money as M};

    #[test]
    fn agrees_with_exhaustive_on_all_scenarios() {
        let p = paper_like_problem();
        let scenarios = [
            Scenario::budget(p.baseline().cost() + M::from_cents(40)),
            Scenario::time_limit(Hours::new(0.3)),
            Scenario::tradeoff_normalized(0.4),
        ];
        for s in scenarios {
            let a = solve_via_space(&p, s);
            let b = solve_exhaustive(&p, s);
            assert_eq!(a.feasible(), b.feasible(), "{s:?}");
            assert!((a.objective() - b.objective()).abs() < 1e-12, "{s:?}");
        }
    }

    #[test]
    fn agrees_on_random_instances() {
        for seed in 0..8 {
            let p = random_problem(seed, 3, 5);
            let s = Scenario::tradeoff_normalized(0.6);
            let a = solve_via_space(&p, s);
            let b = solve_exhaustive(&p, s);
            assert!((a.objective() - b.objective()).abs() < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn constrained_optima_lie_on_the_frontier() {
        let p = paper_like_problem();
        let space = solution_space(&p);
        for s in [
            Scenario::budget(p.baseline().cost() + M::from_dollars(1)),
            Scenario::time_limit(Hours::new(0.5)),
        ] {
            let o = solve_exhaustive(&p, s);
            if !o.feasible() {
                continue;
            }
            // Find the chosen point in the space and check the frontier flag.
            let mask = o.evaluation.selection.as_mask();
            let point = space.iter().find(|pt| pt.mask == mask).expect("in space");
            assert!(point.on_frontier, "{s:?} chose a dominated point");
        }
    }
}
