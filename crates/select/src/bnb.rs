//! Depth-first branch-and-bound with admissible bounds.
//!
//! Explores the selection tree view-by-view. At each node, two *optimistic*
//! completions bound what the subtree can still achieve:
//!
//! * **time bound** — processing time if every undecided view were
//!   materialized for free (adding views only lowers per-query times);
//! * **cost bound** — transfer (constant) + storage and
//!   maintenance/materialization of only the decided-in views (undecided
//!   views can only add) + processing compute at the time bound.
//!
//! Both are true lower bounds, so pruning on them preserves optimality:
//! on every tested instance the result matches exhaustive search, at a
//! fraction of the node count.

use mv_cost::Selection;
use mv_units::{Hours, Money};

use crate::{Evaluation, Outcome, Scenario, SelectionProblem, SolverKind};

/// Solves `scenario` by branch-and-bound. Returns the same selection as
/// exhaustive search (property-tested), pruning with admissible bounds.
pub fn solve_bnb(problem: &SelectionProblem, scenario: Scenario) -> Outcome {
    let baseline = problem.baseline();
    // Seed the incumbent greedily for effective early pruning.
    let mut incumbent = crate::greedy::solve_greedy(problem, scenario).evaluation;
    {
        // The empty selection may beat greedy under weird scenarios.
        if scenario.better(&baseline, &incumbent, &baseline) {
            incumbent = baseline.clone();
        }
    }

    let mut selection = vec![false; problem.len()];
    let mut stats = BnbStats::default();
    descend(
        problem,
        scenario,
        &baseline,
        &mut selection,
        0,
        &mut incumbent,
        &mut stats,
    );
    Outcome::new(incumbent, baseline, scenario, SolverKind::BranchAndBound)
}

/// Node counters (exposed for the ablation bench via `solve_bnb_counted`).
#[derive(Debug, Default, Clone, Copy)]
pub struct BnbStats {
    /// Nodes visited.
    pub visited: u64,
    /// Subtrees pruned by bounds.
    pub pruned: u64,
}

/// [`solve_bnb`] variant that also reports node counters.
pub fn solve_bnb_counted(problem: &SelectionProblem, scenario: Scenario) -> (Outcome, BnbStats) {
    let baseline = problem.baseline();
    let mut incumbent = crate::greedy::solve_greedy(problem, scenario).evaluation;
    if scenario.better(&baseline, &incumbent, &baseline) {
        incumbent = baseline.clone();
    }
    let mut selection = vec![false; problem.len()];
    let mut stats = BnbStats::default();
    descend(
        problem,
        scenario,
        &baseline,
        &mut selection,
        0,
        &mut incumbent,
        &mut stats,
    );
    (
        Outcome::new(incumbent, baseline, scenario, SolverKind::BranchAndBound),
        stats,
    )
}

fn descend(
    problem: &SelectionProblem,
    scenario: Scenario,
    baseline: &Evaluation,
    selection: &mut Selection,
    depth: usize,
    incumbent: &mut Evaluation,
    stats: &mut BnbStats,
) {
    stats.visited += 1;
    if depth == problem.len() {
        let e = problem.evaluate(selection);
        if scenario.better(&e, incumbent, baseline) {
            *incumbent = e;
        }
        return;
    }

    if prune(problem, scenario, baseline, selection, depth, incumbent) {
        stats.pruned += 1;
        return;
    }

    // Branch: include first (views usually help), then exclude.
    selection[depth] = true;
    descend(problem, scenario, baseline, selection, depth + 1, incumbent, stats);
    selection[depth] = false;
    descend(problem, scenario, baseline, selection, depth + 1, incumbent, stats);
}

/// `true` when the subtree rooted at `depth` cannot beat the incumbent.
fn prune(
    problem: &SelectionProblem,
    scenario: Scenario,
    baseline: &Evaluation,
    selection: &Selection,
    depth: usize,
    incumbent: &Evaluation,
) -> bool {
    let ctx = problem.model().context();
    let candidates = problem.candidates();

    // Optimistic completion: all undecided views included (min time)...
    let mut optimistic = selection.clone();
    for s in optimistic.iter_mut().skip(depth) {
        *s = true;
    }
    let min_time = problem
        .model()
        .processing_time_with_views(candidates, &optimistic);

    // ...but only decided-in views pay storage/build/refresh (min cost).
    let mut decided_only = selection.clone();
    for s in decided_only.iter_mut().skip(depth) {
        *s = false;
    }
    let min_cost = {
        let storage = ctx
            .pricing
            .storage
            .period_cost(&problem.model().storage_timeline(
                problem.model().views_size(candidates, &decided_only),
            ));
        let compute_time = |t: Hours| -> Money {
            if t == Hours::ZERO {
                Money::ZERO
            } else {
                ctx.pricing.compute.cost(t, &ctx.instance, ctx.nb_instances)
            }
        };
        problem.model().transfer_cost()
            + storage
            + compute_time(min_time)
            + compute_time(problem.model().maintenance_time(candidates, &decided_only))
            + compute_time(
                problem
                    .model()
                    .materialization_time(candidates, &decided_only),
            )
    };

    let incumbent_feasible = scenario.feasible(incumbent);
    match scenario {
        Scenario::Mv1 { budget } => {
            // Infeasible whole subtree.
            if incumbent_feasible && min_cost > budget {
                return true;
            }
            // Cannot beat the incumbent's time.
            incumbent_feasible && min_time >= incumbent.time
        }
        Scenario::Mv2 { time_limit } => {
            if incumbent_feasible && min_time > time_limit {
                return true;
            }
            incumbent_feasible && min_cost >= incumbent.cost()
        }
        Scenario::Mv3 { alpha, normalize } => {
            let (t0, c0) = if normalize {
                (
                    baseline.time.value().max(f64::MIN_POSITIVE),
                    baseline.cost().to_dollars_f64().abs().max(f64::MIN_POSITIVE),
                )
            } else {
                (1.0, 1.0)
            };
            let bound = alpha * min_time.value() / t0
                + (1.0 - alpha) * min_cost.to_dollars_f64() / c0;
            let incumbent_obj = scenario.objective(incumbent, baseline);
            bound >= incumbent_obj
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::solve_exhaustive;
    use crate::fixtures::{paper_like_problem, random_problem};
    use mv_units::{Hours, Money};

    #[test]
    fn matches_exhaustive_on_paper_like_problem() {
        let p = paper_like_problem();
        let base_cost = p.baseline().cost();
        let scenarios = [
            Scenario::budget(base_cost + Money::from_cents(50)),
            Scenario::budget(base_cost - Money::from_cents(10)),
            Scenario::time_limit(Hours::new(0.1)),
            Scenario::time_limit(Hours::new(0.6)),
            Scenario::tradeoff(0.3),
            Scenario::tradeoff_normalized(0.65),
        ];
        for s in scenarios {
            let b = solve_bnb(&p, s);
            let x = solve_exhaustive(&p, s);
            assert_eq!(b.feasible(), x.feasible(), "{s:?}");
            assert!(
                (b.objective() - x.objective()).abs() < 1e-9,
                "{s:?}: bnb {} vs exhaustive {}",
                b.objective(),
                x.objective()
            );
        }
    }

    #[test]
    fn matches_exhaustive_on_random_instances() {
        for seed in 0..12 {
            let p = random_problem(seed, 3, 6);
            for s in [
                Scenario::budget(p.baseline().cost() + Money::from_cents(30)),
                Scenario::time_limit(Hours::new(0.3)),
                Scenario::tradeoff_normalized(0.5),
            ] {
                let b = solve_bnb(&p, s);
                let x = solve_exhaustive(&p, s);
                assert!(
                    (b.objective() - x.objective()).abs() < 1e-9,
                    "seed {seed} {s:?}: {} vs {}",
                    b.objective(),
                    x.objective()
                );
            }
        }
    }

    #[test]
    fn pruning_actually_happens() {
        let p = random_problem(3, 4, 10);
        let (o, stats) = solve_bnb_counted(&p, Scenario::tradeoff_normalized(0.5));
        assert!(o.feasible());
        assert!(stats.visited < (1u64 << 11), "visited {}", stats.visited);
        assert!(stats.pruned > 0);
    }
}
