//! Depth-first branch-and-bound with admissible bounds.
//!
//! Explores the selection tree view-by-view. At each node, two *optimistic*
//! completions bound what the subtree can still achieve:
//!
//! * **time bound** — processing time if every undecided view were
//!   materialized for free (adding views only lowers per-query times);
//! * **cost bound** — transfer (constant) + storage and
//!   maintenance/materialization of only the decided-in views (undecided
//!   views can only add) + processing compute at the time bound.
//!
//! Both are true lower bounds, so pruning on them preserves optimality:
//! on every tested instance the result matches exhaustive search, at a
//! fraction of the node count.
//!
//! The time bound is maintained by an [`IncrementalEvaluator`] positioned
//! at the "all undecided views included" completion: branching *exclude*
//! at depth `d` is one `unflip(d)` (O(m)) and backtracking one `flip(d)`,
//! replacing the per-node O(n·m) re-evaluation and two selection clones
//! of the previous implementation. Bound values are bit-identical to the
//! old ones, so pruning decisions — and therefore outcomes — match.

use mv_cost::SelectionSet;
use mv_units::{Hours, Money};

use crate::{Evaluation, IncrementalEvaluator, Outcome, Scenario, SelectionProblem, SolverKind};

/// Solves `scenario` by branch-and-bound. Returns the same selection as
/// exhaustive search (property-tested), pruning with admissible bounds.
pub fn solve_bnb(problem: &SelectionProblem, scenario: Scenario) -> Outcome {
    solve_bnb_counted(problem, scenario).0
}

/// Node counters (exposed for the ablation bench via `solve_bnb_counted`).
#[derive(Debug, Default, Clone, Copy)]
pub struct BnbStats {
    /// Nodes visited.
    pub visited: u64,
    /// Subtrees pruned by bounds.
    pub pruned: u64,
}

/// [`solve_bnb`] variant that also reports node counters.
pub fn solve_bnb_counted(problem: &SelectionProblem, scenario: Scenario) -> (Outcome, BnbStats) {
    let baseline = problem.baseline();
    // Seed the incumbent greedily for effective early pruning; the empty
    // selection may beat greedy under weird scenarios.
    let mut incumbent = crate::greedy::solve_greedy(problem, scenario).evaluation;
    if scenario.better(&baseline, &incumbent, &baseline) {
        incumbent = baseline.clone();
    }

    let mut search = Search {
        problem,
        scenario,
        baseline: &baseline,
        decided: SelectionSet::empty(problem.len()),
        optimistic: IncrementalEvaluator::with_selection(
            problem,
            &SelectionSet::full(problem.len()),
        ),
        stats: BnbStats::default(),
    };
    search.descend(0, &mut incumbent);
    let stats = search.stats;
    (
        Outcome::new(incumbent, baseline, scenario, SolverKind::BranchAndBound),
        stats,
    )
}

/// DFS state: the decided prefix (suffix all off) and the optimistic
/// completion (same prefix, suffix all on).
struct Search<'p, 'b> {
    problem: &'p SelectionProblem,
    scenario: Scenario,
    baseline: &'b Evaluation,
    decided: SelectionSet,
    optimistic: IncrementalEvaluator<'p>,
    stats: BnbStats,
}

impl Search<'_, '_> {
    fn descend(&mut self, depth: usize, incumbent: &mut Evaluation) {
        self.stats.visited += 1;
        if depth == self.problem.len() {
            // Fully decided: the optimistic completion *is* the selection.
            let e = self.optimistic.snapshot();
            if self.scenario.better(&e, incumbent, self.baseline) {
                *incumbent = e;
            }
            return;
        }

        if self.prune(depth, incumbent) {
            self.stats.pruned += 1;
            return;
        }

        // Branch: include first (views usually help), then exclude.
        self.decided.set(depth, true);
        self.descend(depth + 1, incumbent);
        self.decided.set(depth, false);
        self.optimistic.unflip(depth);
        self.descend(depth + 1, incumbent);
        self.optimistic.flip(depth);
    }

    /// `true` when the subtree rooted at `depth` cannot beat the incumbent.
    fn prune(&mut self, _depth: usize, incumbent: &Evaluation) -> bool {
        let problem = self.problem;
        let scenario = self.scenario;
        let ctx = problem.model().context();
        let candidates = problem.candidates();

        // Optimistic completion: all undecided views included (min time)...
        let min_time = self.optimistic.processing_time();

        // ...but only decided-in views pay storage/build/refresh (min cost).
        let min_cost = {
            let storage = ctx.pricing.storage.period_cost(
                &problem
                    .model()
                    .storage_timeline(problem.model().views_size(candidates, &self.decided)),
            );
            let compute_time = |t: Hours| -> Money {
                if t == Hours::ZERO {
                    Money::ZERO
                } else {
                    ctx.pricing.compute.cost(t, &ctx.instance, ctx.nb_instances)
                }
            };
            problem.model().transfer_cost()
                + storage
                + compute_time(min_time)
                + compute_time(problem.model().maintenance_time(candidates, &self.decided))
                + compute_time(
                    problem
                        .model()
                        .materialization_time(candidates, &self.decided),
                )
        };

        let incumbent_feasible = scenario.feasible(incumbent);
        match scenario {
            Scenario::Mv1 { budget } => {
                // Infeasible whole subtree.
                if incumbent_feasible && min_cost > budget {
                    return true;
                }
                // Cannot beat the incumbent's time.
                incumbent_feasible && min_time >= incumbent.time
            }
            Scenario::Mv2 { time_limit } => {
                if incumbent_feasible && min_time > time_limit {
                    return true;
                }
                incumbent_feasible && min_cost >= incumbent.cost()
            }
            Scenario::Mv3 { alpha, normalize } => {
                let (t0, c0) = if normalize {
                    (
                        self.baseline.time.value().max(f64::MIN_POSITIVE),
                        self.baseline
                            .cost()
                            .to_dollars_f64()
                            .abs()
                            .max(f64::MIN_POSITIVE),
                    )
                } else {
                    (1.0, 1.0)
                };
                let bound =
                    alpha * min_time.value() / t0 + (1.0 - alpha) * min_cost.to_dollars_f64() / c0;
                let incumbent_obj = scenario.objective(incumbent, self.baseline);
                bound >= incumbent_obj
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::solve_exhaustive;
    use crate::fixtures::{paper_like_problem, random_problem};
    use mv_units::{Hours, Money};

    #[test]
    fn matches_exhaustive_on_paper_like_problem() {
        let p = paper_like_problem();
        let base_cost = p.baseline().cost();
        let scenarios = [
            Scenario::budget(base_cost + Money::from_cents(50)),
            Scenario::budget(base_cost - Money::from_cents(10)),
            Scenario::time_limit(Hours::new(0.1)),
            Scenario::time_limit(Hours::new(0.6)),
            Scenario::tradeoff(0.3),
            Scenario::tradeoff_normalized(0.65),
        ];
        for s in scenarios {
            let b = solve_bnb(&p, s);
            let x = solve_exhaustive(&p, s);
            assert_eq!(b.feasible(), x.feasible(), "{s:?}");
            assert!(
                (b.objective() - x.objective()).abs() < 1e-9,
                "{s:?}: bnb {} vs exhaustive {}",
                b.objective(),
                x.objective()
            );
        }
    }

    #[test]
    fn matches_exhaustive_on_random_instances() {
        for seed in 0..12 {
            let p = random_problem(seed, 3, 6);
            for s in [
                Scenario::budget(p.baseline().cost() + Money::from_cents(30)),
                Scenario::time_limit(Hours::new(0.3)),
                Scenario::tradeoff_normalized(0.5),
            ] {
                let b = solve_bnb(&p, s);
                let x = solve_exhaustive(&p, s);
                assert!(
                    (b.objective() - x.objective()).abs() < 1e-9,
                    "seed {seed} {s:?}: {} vs {}",
                    b.objective(),
                    x.objective()
                );
            }
        }
    }

    #[test]
    fn pruning_actually_happens() {
        let p = random_problem(3, 4, 10);
        let (o, stats) = solve_bnb_counted(&p, Scenario::tradeoff_normalized(0.5));
        assert!(o.feasible());
        assert!(stats.visited < (1u64 << 11), "visited {}", stats.visited);
        assert!(stats.pruned > 0);
    }
}
