//! Problem fixtures shared by unit tests, property tests, benches and
//! examples.

use mv_cost::{CloudCostModel, CostContext, QueryCharge, ViewCharge};
use mv_pricing::presets;
use mv_units::{Gb, Hours, Months};

use crate::epoch::EpochChain;
use crate::SelectionProblem;

/// A small deterministic problem shaped like the paper's experiment: a
/// 10 GB dataset, a handful of roll-up queries and candidate views whose
/// speedups overlap (so view interactions matter), priced on AWS-2012 with
/// two small instances over one month.
pub fn paper_like_problem() -> SelectionProblem {
    let pricing = presets::aws_2012();
    let instance = pricing.compute.instance("small").unwrap().clone();
    let model = CloudCostModel::new(CostContext {
        pricing,
        instance,
        nb_instances: 2,
        months: Months::new(1.0),
        dataset_size: Gb::new(10.0),
        inserts: vec![],
        workload: vec![
            QueryCharge::new("Q1", Gb::new(0.4), Hours::new(0.21)),
            QueryCharge::new("Q2", Gb::new(0.6), Hours::new(0.21)),
            QueryCharge::new("Q3", Gb::new(0.2), Hours::new(0.21)),
        ],
    });
    let candidates = vec![
        // A coarse, cheap view serving Q1 only.
        ViewCharge::new(
            "v-year-country",
            Gb::new(0.01),
            Hours::new(0.22),
            Hours::new(0.02),
            3,
        )
        .answers(0, Hours::new(0.011)),
        // A mid view serving Q1 and Q2.
        ViewCharge::new(
            "v-month-country",
            Gb::new(0.05),
            Hours::new(0.23),
            Hours::new(0.03),
            3,
        )
        .answers(0, Hours::new(0.012))
        .answers(1, Hours::new(0.012)),
        // A big view serving all three queries, slower per query.
        ViewCharge::new(
            "v-day-region",
            Gb::new(0.8),
            Hours::new(0.25),
            Hours::new(0.05),
            3,
        )
        .answers(0, Hours::new(0.03))
        .answers(1, Hours::new(0.03))
        .answers(2, Hours::new(0.03)),
        // A view whose storage outweighs its tiny benefit.
        ViewCharge::new(
            "v-bulky",
            Gb::new(6.0),
            Hours::new(0.26),
            Hours::new(0.08),
            3,
        )
        .answers(2, Hours::new(0.2)),
    ];
    SelectionProblem::new(model, candidates)
}

/// The alternating two-specialist billing horizon used by the
/// chain-vs-myopic regressions: each epoch one of two queries is hot
/// (frequency 5) and the other cold (0.2), and each query has a
/// specialist view with a hefty 8-hour build. A transition-blind solver
/// flips between the specialists every epoch, re-paying a
/// materialization the transition-aware chain treats as sunk once both
/// are resident — so the chain's horizon total is strictly cheaper.
pub fn churn_chain(epochs: usize) -> EpochChain {
    let pricing = presets::aws_2012();
    let instance = pricing.compute.instance("small").unwrap().clone();
    let models: Vec<CloudCostModel> = (0..epochs)
        .map(|e| {
            let (f1, f2) = if e % 2 == 0 { (5.0, 0.2) } else { (0.2, 5.0) };
            let mut q1 = QueryCharge::new("Q1", Gb::new(0.01), Hours::new(10.0));
            q1.frequency = f1;
            let mut q2 = QueryCharge::new("Q2", Gb::new(0.01), Hours::new(10.0));
            q2.frequency = f2;
            CloudCostModel::new(CostContext {
                pricing: pricing.clone(),
                instance: instance.clone(),
                nb_instances: 1,
                months: Months::new(1.0),
                dataset_size: Gb::new(10.0),
                inserts: vec![],
                workload: vec![q1, q2],
            })
        })
        .collect();
    let pool = vec![
        ViewCharge::new("spec-Q1", Gb::new(1.0), Hours::new(8.0), Hours::new(0.5), 2)
            .answers(0, Hours::new(0.5)),
        ViewCharge::new("spec-Q2", Gb::new(1.0), Hours::new(8.0), Hours::new(0.5), 2)
            .answers(1, Hours::new(0.5)),
    ];
    EpochChain::new(models, pool)
}

/// Deterministic xorshift generator so fixtures need no external RNG.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e3779b97f4a7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// Uniform float in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

/// A random problem with `n_queries` queries and `n_candidates` candidate
/// views. Each candidate answers a random subset of queries with a random
/// speedup. Used by the solver-equivalence property tests: exhaustive
/// search is the ground truth the other solvers are checked against.
pub fn random_problem(seed: u64, n_queries: usize, n_candidates: usize) -> SelectionProblem {
    let mut rng = XorShift(seed);
    let pricing = presets::aws_2012();
    let instance = pricing.compute.instance("small").unwrap().clone();
    let workload: Vec<QueryCharge> = (0..n_queries)
        .map(|i| {
            QueryCharge::new(
                format!("Q{i}"),
                Gb::new(rng.range(0.05, 2.0)),
                Hours::new(rng.range(0.05, 1.0)),
            )
        })
        .collect();
    let model = CloudCostModel::new(CostContext {
        pricing,
        instance,
        nb_instances: 1 + (seed % 3) as u32,
        months: Months::new(1.0),
        dataset_size: Gb::new(rng.range(1.0, 50.0)),
        inserts: vec![],
        workload: workload.clone(),
    });
    let candidates: Vec<ViewCharge> = (0..n_candidates)
        .map(|k| {
            let mut v = ViewCharge::new(
                format!("v{k}"),
                Gb::new(rng.range(0.001, 8.0)),
                Hours::new(rng.range(0.01, 0.4)),
                Hours::new(rng.range(0.0, 0.2)),
                n_queries,
            );
            for (i, q) in workload.iter().enumerate() {
                if rng.next_f64() < 0.6 {
                    // Speedup factor between 2x and 50x.
                    let t = q.base_time.value() / rng.range(2.0, 50.0);
                    v = v.answers(i, Hours::new(t));
                }
            }
            v
        })
        .collect();
    SelectionProblem::new(model, candidates)
}

/// A random problem in the *sparse* regime the scaled evaluator is
/// built for: each candidate answers roughly `density`·`n_queries`
/// queries (clamped to at least one for positive densities), with
/// non-uniform query frequencies so the frequency-weighted folds are
/// exercised. At low densities most queries have few answerers, which
/// drives the evaluator's top-k tables through their empty, partially
/// filled and pruned states.
pub fn random_sparse_problem(
    seed: u64,
    n_queries: usize,
    n_candidates: usize,
    density: f64,
) -> SelectionProblem {
    let mut rng = XorShift(seed ^ 0x5370_6172_7365);
    let pricing = presets::aws_2012();
    let instance = pricing.compute.instance("small").unwrap().clone();
    let workload: Vec<QueryCharge> = (0..n_queries)
        .map(|i| {
            let mut q = QueryCharge::new(
                format!("Q{i}"),
                Gb::new(rng.range(0.05, 2.0)),
                Hours::new(rng.range(0.05, 1.0)),
            );
            q.frequency = rng.range(0.2, 5.0);
            q
        })
        .collect();
    let model = CloudCostModel::new(CostContext {
        pricing,
        instance,
        nb_instances: 1 + (seed % 3) as u32,
        months: Months::new(1.0),
        dataset_size: Gb::new(rng.range(1.0, 50.0)),
        inserts: vec![],
        workload: workload.clone(),
    });
    let candidates: Vec<ViewCharge> = (0..n_candidates)
        .map(|k| {
            let mut v = ViewCharge::new(
                format!("v{k}"),
                Gb::new(rng.range(0.001, 8.0)),
                Hours::new(rng.range(0.01, 0.4)),
                Hours::new(rng.range(0.0, 0.2)),
                n_queries,
            );
            let mut answered = 0;
            for (i, q) in workload.iter().enumerate() {
                if rng.next_f64() < density {
                    let t = q.base_time.value() / rng.range(2.0, 50.0);
                    v = v.answers(i, Hours::new(t));
                    answered += 1;
                }
            }
            if answered == 0 && density > 0.0 && n_queries > 0 {
                // Keep every candidate relevant: answer one random query.
                let i = (rng.next_u64() as usize) % n_queries;
                let t = workload[i].base_time.value() / rng.range(2.0, 50.0);
                v = v.answers(i, Hours::new(t));
            }
            v
        })
        .collect();
    SelectionProblem::new(model, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic() {
        let a = random_problem(9, 3, 4);
        let b = random_problem(9, 3, 4);
        assert_eq!(a.candidates(), b.candidates());
        let c = random_problem(10, 3, 4);
        assert_ne!(a.candidates(), c.candidates());
    }

    #[test]
    fn sparse_fixture_is_deterministic_and_sparse() {
        let a = random_sparse_problem(5, 40, 12, 0.1);
        let b = random_sparse_problem(5, 40, 12, 0.1);
        assert_eq!(a.candidates(), b.candidates());
        // Every candidate answers something, and the pool is far from
        // dense overall.
        let degrees: Vec<usize> = a
            .candidates()
            .iter()
            .map(|c| c.profile.answered())
            .collect();
        assert!(degrees.iter().all(|&d| d >= 1));
        let total: usize = degrees.iter().sum();
        assert!(total < 40 * 12 / 2, "unexpectedly dense: {total}");
    }

    #[test]
    fn paper_like_problem_shape() {
        let p = paper_like_problem();
        assert_eq!(p.len(), 4);
        assert_eq!(p.model().context().workload.len(), 3);
    }
}
