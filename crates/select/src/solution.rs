//! Solver outcomes and the improvement metrics the paper reports.

use serde::{Deserialize, Serialize};

use crate::{Evaluation, Scenario};

/// Which algorithm produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// The paper's dynamic-programming 0/1 knapsack (Section 5.2) over
    /// linearized per-view deltas, with a repair pass.
    PaperKnapsack,
    /// Exhaustive subset enumeration (ground truth; exponential).
    Exhaustive,
    /// Add-one-at-a-time greedy hill climbing.
    Greedy,
    /// Depth-first branch-and-bound with admissible time/cost bounds.
    BranchAndBound,
    /// Greedy fill plus bounded flip/swap local-search improvement.
    LocalSearch,
    /// Large-neighborhood search: destroy-and-repair rounds over the
    /// incremental evaluator, for candidate pools where the O(n²) swap
    /// neighborhood stalls.
    Lns,
}

impl SolverKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::PaperKnapsack => "knapsack",
            SolverKind::Exhaustive => "exhaustive",
            SolverKind::Greedy => "greedy",
            SolverKind::BranchAndBound => "branch-and-bound",
            SolverKind::LocalSearch => "local-search",
            SolverKind::Lns => "lns",
        }
    }
}

/// A solved selection: the chosen evaluation plus reporting context.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The chosen selection, fully evaluated.
    pub evaluation: Evaluation,
    /// The no-views baseline (the paper's "without materialized views").
    pub baseline: Evaluation,
    /// The scenario that was optimized.
    pub scenario: Scenario,
    /// The algorithm that produced it.
    pub solver: SolverKind,
}

impl Outcome {
    /// Builds an outcome.
    pub fn new(
        evaluation: Evaluation,
        baseline: Evaluation,
        scenario: Scenario,
        solver: SolverKind,
    ) -> Self {
        Outcome {
            evaluation,
            baseline,
            scenario,
            solver,
        }
    }

    /// Whether the chosen selection satisfies the scenario constraint.
    pub fn feasible(&self) -> bool {
        self.scenario.feasible(&self.evaluation)
    }

    /// The scenario objective value of the chosen selection.
    pub fn objective(&self) -> f64 {
        self.scenario.objective(&self.evaluation, &self.baseline)
    }

    /// The paper's Table 6 "IP Rate": relative processing-time improvement
    /// over the no-view baseline.
    pub fn time_improvement(&self) -> f64 {
        let base = self.baseline.time.value();
        if base == 0.0 {
            return 0.0;
        }
        (base - self.evaluation.time.value()) / base
    }

    /// The paper's Table 7 "IC Rate": relative cost improvement over the
    /// no-view baseline.
    pub fn cost_improvement(&self) -> f64 {
        let base = self.baseline.cost().to_dollars_f64();
        if base == 0.0 {
            return 0.0;
        }
        (base - self.evaluation.cost().to_dollars_f64()) / base
    }

    /// The paper's Table 8 tradeoff rate: relative improvement of the MV3
    /// weighted objective over the baseline's.
    pub fn tradeoff_improvement(&self) -> f64 {
        let base = self.scenario.objective(&self.baseline, &self.baseline);
        if base == 0.0 {
            return 0.0;
        }
        (base - self.objective()) / base
    }

    /// Names of the selected candidate views, given the candidate list.
    pub fn selected_names<'a>(&self, names: &'a [String]) -> Vec<&'a str> {
        self.evaluation
            .selection
            .ones()
            .map(|k| names[k].as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_like_problem;
    use mv_units::Money;

    #[test]
    fn improvement_rates() {
        let p = paper_like_problem();
        let baseline = p.baseline();
        let all = p.evaluate(&mv_cost::SelectionSet::full(p.len()));
        let o = Outcome::new(
            all,
            baseline.clone(),
            Scenario::budget(Money::MAX),
            SolverKind::Exhaustive,
        );
        assert!(o.feasible());
        assert!(o.time_improvement() > 0.0);
        assert!(o.time_improvement() <= 1.0);
        // Baseline outcome improves nothing.
        let o2 = Outcome::new(
            baseline.clone(),
            baseline,
            Scenario::tradeoff(0.5),
            SolverKind::Greedy,
        );
        assert_eq!(o2.time_improvement(), 0.0);
        assert_eq!(o2.cost_improvement(), 0.0);
        assert_eq!(o2.tradeoff_improvement(), 0.0);
    }

    #[test]
    fn selected_names_filter() {
        let p = paper_like_problem();
        let baseline = p.baseline();
        let mut sel = mv_cost::SelectionSet::empty(p.len());
        sel.set(1, true);
        let e = p.evaluate(&sel);
        let o = Outcome::new(e, baseline, Scenario::tradeoff(0.5), SolverKind::Greedy);
        let names: Vec<String> = p.candidates().iter().map(|c| c.name.clone()).collect();
        assert_eq!(o.selected_names(&names), vec!["v-month-country"]);
    }

    #[test]
    fn solver_names() {
        assert_eq!(SolverKind::PaperKnapsack.name(), "knapsack");
        assert_eq!(SolverKind::Exhaustive.name(), "exhaustive");
        assert_eq!(SolverKind::Greedy.name(), "greedy");
        assert_eq!(SolverKind::BranchAndBound.name(), "branch-and-bound");
        assert_eq!(SolverKind::Lns.name(), "lns");
    }
}
