//! Large-neighborhood search: destroy-and-repair over the incremental
//! evaluator.
//!
//! Flip/swap local search ([`crate::local_search`]) probes an O(n²)
//! swap neighborhood per round — fine at the paper's n = 20, hopeless
//! at n = 2 000. LNS trades the exhaustive neighborhood for *structured
//! perturbation*: each round deselects a slice of the incumbent (the
//! destroy set), then greedily refills from a benefit-ranked shortlist
//! (the repair), accepting the round only when it strictly improves the
//! scenario ordering. Destroy sets alternate between **random** (escape
//! direction diversity) and **worst-charge** (evict the views paying
//! the most materialization/maintenance/storage — the slots most likely
//! misallocated). Every probe rides the evaluator's O(deg) flips, so a
//! round costs O(shortlist² · (n + m)) instead of the full-neighborhood
//! O(n² · (n + m)).
//!
//! When [`LnsConfig::polish_moves`] is nonzero, the search *starts*
//! from a full [`local_search::improve`] pass with that budget, making
//! [`solve_lns`] never worse than [`crate::solve_local_search`] under
//! the same scenario by construction (rounds only ever replace the
//! incumbent with strictly better evaluations, and a rejected round is
//! rolled back flip-for-flip). The regression pin lives in
//! `tests/lns_never_worse.rs`.

use crate::local_search::{self, default_move_budget};
use crate::{Evaluation, IncrementalEvaluator, Outcome, Scenario, SelectionProblem, SolverKind};

/// Tuning knobs for [`solve_lns_with`] / [`refine`].
#[derive(Debug, Clone)]
pub struct LnsConfig {
    /// Destroy-and-repair rounds to run.
    pub rounds: usize,
    /// Fraction of the selected views each destroy set evicts
    /// (at least one).
    pub destroy_fraction: f64,
    /// Unselected candidates the repair pass considers, ranked by
    /// standalone benefit (`0` = all of them — exact repair, large-n
    /// hostile).
    pub shortlist: usize,
    /// Budget for the flip/swap improvement pass run *before* the
    /// rounds; `0` skips it. With at least [`default_move_budget`]
    /// moves, the final result is never worse than
    /// [`crate::solve_local_search`]'s.
    pub polish_moves: usize,
    /// Seed for the random destroy sets (deterministic search).
    pub seed: u64,
}

impl LnsConfig {
    /// Defaults scaled to `n` candidates: small pools keep the full
    /// polish pass (and with it the never-worse-than-local-search
    /// guarantee); large pools skip the O(n²) swap neighborhood and
    /// lean on the rounds alone.
    pub fn for_problem(n: usize) -> Self {
        LnsConfig {
            rounds: 12,
            destroy_fraction: 0.3,
            shortlist: 64,
            polish_moves: if n <= 256 { default_move_budget(n) } else { 0 },
            seed: 0x6d_7663_6c6f_7564,
        }
    }
}

/// The xorshift-based splitmix step the fixtures use; kept private so
/// the search is deterministic without an RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// Standalone benefit score of each candidate: frequency-weighted hours
/// it would shave off the workload if it were the only selected view.
/// Interactions make this optimistic, but it ranks repair shortlists
/// and worst-charge evictions well — and it is selection-independent,
/// so it is computed once per search.
fn standalone_gains(problem: &SelectionProblem) -> Vec<f64> {
    let workload = &problem.model().context().workload;
    problem
        .candidates()
        .iter()
        .map(|c| {
            c.profile
                .entries()
                .map(|(i, t)| {
                    let q = &workload[i];
                    (q.base_time.value() - t.value()).max(0.0) * q.frequency
                })
                .sum()
        })
        .collect()
}

/// Charge weight of a candidate: the cost-side hours and bytes keeping
/// it selected burns per period. The worst-charge destroy set evicts
/// the heaviest.
fn charge_weight(problem: &SelectionProblem, k: usize) -> f64 {
    let c = &problem.candidates()[k];
    c.maintenance.value() + c.materialization.value() + c.size.value()
}

/// Greedy best-improvement fill restricted to `pool`: repeatedly flip
/// on the pool candidate that improves the scenario ordering the most,
/// until none does. The restriction is what keeps repair affordable at
/// large n.
fn greedy_fill_pool(
    ev: &mut IncrementalEvaluator<'_>,
    scenario: Scenario,
    baseline: &Evaluation,
    pool: &[usize],
) -> Evaluation {
    let mut current = ev.snapshot();
    loop {
        let mut best: Option<(usize, Evaluation)> = None;
        for &k in pool {
            if ev.is_selected(k) {
                continue;
            }
            ev.flip(k);
            let e = ev.snapshot();
            ev.unflip(k);
            if scenario.better(&e, &current, baseline)
                && best
                    .as_ref()
                    .is_none_or(|(_, b)| scenario.better(&e, b, baseline))
            {
                best = Some((k, e));
            }
        }
        match best {
            Some((k, e)) => {
                ev.flip(k);
                current = e;
            }
            None => return current,
        }
    }
}

/// Runs the LNS rounds from the evaluator's current position, returning
/// the best evaluation found (the evaluator is left positioned on it).
///
/// Acceptance is strict: a round's result replaces the incumbent only
/// when [`Scenario::better`] says so; otherwise the selection is rolled
/// back to the incumbent before the next round. With
/// `cfg.polish_moves > 0` the incumbent starts from a full
/// [`local_search::improve`] pass, so the result is never worse than
/// that pass's.
pub fn refine(
    ev: &mut IncrementalEvaluator<'_>,
    scenario: Scenario,
    baseline: &Evaluation,
    cfg: &LnsConfig,
) -> Evaluation {
    let mut incumbent = if cfg.polish_moves > 0 {
        local_search::improve(ev, scenario, baseline, cfg.polish_moves)
    } else {
        ev.snapshot()
    };
    if cfg.rounds == 0 {
        return incumbent;
    }
    let gains = standalone_gains(ev.problem());
    let mut rng = XorShift(cfg.seed);
    for round in 0..cfg.rounds {
        let n = ev.problem().len();
        let mut selected: Vec<usize> = ev.selection().ones().collect();
        // Destroy: evict part of the incumbent. Even rounds draw the
        // set uniformly (diversification); odd rounds evict the
        // heaviest charges (intensification on likely misallocations).
        let mut destroyed: Vec<usize> = Vec::new();
        if !selected.is_empty() {
            let want = ((selected.len() as f64 * cfg.destroy_fraction).ceil() as usize)
                .clamp(1, selected.len());
            if round % 2 == 0 {
                for d in 0..want {
                    let j = d + (rng.next_u64() as usize) % (selected.len() - d);
                    selected.swap(d, j);
                }
                destroyed.extend_from_slice(&selected[..want]);
            } else {
                let problem = ev.problem();
                selected.sort_by(|&a, &b| {
                    charge_weight(problem, b)
                        .partial_cmp(&charge_weight(problem, a))
                        .expect("charge weights are finite")
                        .then(a.cmp(&b))
                });
                destroyed.extend_from_slice(&selected[..want]);
            }
            for &k in &destroyed {
                ev.unflip(k);
            }
        }
        // Repair pool: the evicted views themselves plus the
        // highest-gain unselected candidates.
        let mut pool = destroyed.clone();
        let mut rest: Vec<usize> = (0..n)
            .filter(|&k| !ev.is_selected(k) && !destroyed.contains(&k))
            .collect();
        if cfg.shortlist > 0 && rest.len() > cfg.shortlist {
            rest.sort_by(|&a, &b| {
                gains[b]
                    .partial_cmp(&gains[a])
                    .expect("gains are finite")
                    .then(a.cmp(&b))
            });
            rest.truncate(cfg.shortlist);
        }
        pool.extend(rest);
        let candidate = greedy_fill_pool(ev, scenario, baseline, &pool);
        let accepted = scenario.better(&candidate, &incumbent, baseline);
        if accepted {
            incumbent = candidate;
        } else {
            // Roll the evaluator back to the incumbent flip-for-flip.
            for k in 0..n {
                if ev.is_selected(k) != incumbent.selection.contains(k) {
                    ev.toggle(k);
                }
            }
        }
        mv_obs::inc(mv_obs::Counter::LnsRounds);
        if mv_obs::enabled() {
            mv_obs::inc(if accepted {
                mv_obs::Counter::LnsAccepted
            } else {
                mv_obs::Counter::LnsRejected
            });
            mv_obs::record(mv_obs::Hist::LnsDestroySize, destroyed.len() as u64);
            mv_obs::event(
                "lns_round",
                &[
                    ("round", round as f64),
                    ("destroyed", destroyed.len() as f64),
                    ("accepted", f64::from(u8::from(accepted))),
                ],
            );
        }
    }
    incumbent
}

/// Solves `scenario` by greedy fill, a polish pass, then
/// destroy-and-repair rounds — the large-n tier above
/// [`crate::solve_local_search`]. Deterministic for a fixed config.
pub fn solve_lns(problem: &SelectionProblem, scenario: Scenario) -> Outcome {
    solve_lns_with(problem, scenario, &LnsConfig::for_problem(problem.len()))
}

/// [`solve_lns`] with explicit tuning.
pub fn solve_lns_with(problem: &SelectionProblem, scenario: Scenario, cfg: &LnsConfig) -> Outcome {
    let baseline = problem.baseline();
    let mut ev = IncrementalEvaluator::new(problem);
    if cfg.polish_moves > 0 {
        // Small-pool path: full greedy fill, so the polish pass starts
        // where solve_local_search starts (the never-worse guarantee).
        local_search::greedy_fill(&mut ev, scenario, &baseline);
    } else {
        // Large-pool path: shortlist-restricted fill.
        let gains = standalone_gains(problem);
        let mut pool: Vec<usize> = (0..problem.len()).collect();
        if cfg.shortlist > 0 && pool.len() > cfg.shortlist {
            pool.sort_by(|&a, &b| {
                gains[b]
                    .partial_cmp(&gains[a])
                    .expect("gains are finite")
                    .then(a.cmp(&b))
            });
            pool.truncate(cfg.shortlist);
        }
        greedy_fill_pool(&mut ev, scenario, &baseline, &pool);
    }
    let best = refine(&mut ev, scenario, &baseline, cfg);
    Outcome::new(best, baseline, scenario, SolverKind::Lns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_like_problem, random_problem};
    use crate::solve_greedy;
    use mv_units::{Hours, Money};

    #[test]
    fn solves_the_paper_fixture_feasibly() {
        let p = paper_like_problem();
        let budget = p.baseline().cost() + Money::from_cents(60);
        let o = solve_lns(&p, Scenario::budget(budget));
        assert!(o.feasible());
        assert_eq!(o.solver, SolverKind::Lns);
        assert_eq!(o.evaluation, p.evaluate(&o.evaluation.selection));
    }

    #[test]
    fn deterministic_for_fixed_config() {
        let p = random_problem(11, 4, 9);
        let s = Scenario::tradeoff_normalized(0.5);
        let a = solve_lns(&p, s);
        let b = solve_lns(&p, s);
        assert_eq!(a.evaluation, b.evaluation);
    }

    #[test]
    fn never_worse_than_greedy() {
        for seed in 0..15 {
            let p = random_problem(seed + 70, 4, 7);
            for scenario in [
                Scenario::budget(p.baseline().cost() + Money::from_cents(60)),
                Scenario::time_limit(Hours::new(0.4)),
                Scenario::tradeoff_normalized(0.5),
            ] {
                let g = solve_greedy(&p, scenario);
                let l = solve_lns(&p, scenario);
                assert!(
                    !scenario.better(&g.evaluation, &l.evaluation, &l.baseline),
                    "seed {seed} {}: greedy beat LNS",
                    scenario.label()
                );
            }
        }
    }

    #[test]
    fn zero_rounds_zero_polish_is_shortlist_greedy() {
        let p = random_problem(3, 4, 8);
        let s = Scenario::tradeoff_normalized(0.4);
        let cfg = LnsConfig {
            rounds: 0,
            polish_moves: 0,
            shortlist: 0,
            destroy_fraction: 0.3,
            seed: 1,
        };
        let o = solve_lns_with(&p, s, &cfg);
        // Unrestricted pool + no rounds ⇒ exactly the greedy fill.
        let g = solve_greedy(&p, s);
        assert_eq!(o.evaluation, g.evaluation);
    }

    #[test]
    fn refine_respects_the_incumbent_on_rejected_rounds() {
        let p = random_problem(21, 4, 10);
        let baseline = p.baseline();
        let s = Scenario::tradeoff_normalized(0.5);
        let mut ev = IncrementalEvaluator::new(&p);
        let cfg = LnsConfig::for_problem(p.len());
        let end = refine(&mut ev, s, &baseline, &cfg);
        // The evaluator ends positioned exactly on the reported result.
        assert_eq!(ev.snapshot(), end);
        assert_eq!(end, p.evaluate(&end.selection));
    }

    #[test]
    fn tiny_shortlist_still_repairs() {
        let p = random_problem(5, 3, 12);
        let s = Scenario::tradeoff_normalized(0.5);
        let cfg = LnsConfig {
            shortlist: 2,
            ..LnsConfig::for_problem(p.len())
        };
        let o = solve_lns_with(&p, s, &cfg);
        assert_eq!(o.evaluation, p.evaluate(&o.evaluation.selection));
    }
}
