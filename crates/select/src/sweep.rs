//! Shared machinery for subset sweeps: the ascending-mask incremental
//! walk and the chunked thread fan-out. The exhaustive solver and the
//! Pareto solution-space enumeration are both built on these, so the
//! stepping logic and the order-preserving chunk layout live in exactly
//! one place.

use mv_cost::SelectionSet;

use crate::{IncrementalEvaluator, SelectionProblem};

/// Visits every mask in `lo..hi` in ascending order, handing `visit`
/// the mask and an [`IncrementalEvaluator`] positioned at it.
///
/// Stepping from mask to mask+1 flips the run of trailing set bits off
/// and the next bit on — amortized two O(m) flips per subset — so a
/// full sweep costs O(2ⁿ·m) instead of O(2ⁿ·n·m).
pub(crate) fn sweep_masks(
    problem: &SelectionProblem,
    lo: u64,
    hi: u64,
    mut visit: impl FnMut(u64, &mut IncrementalEvaluator<'_>),
) {
    debug_assert!(lo < hi, "empty sweep range");
    let mut ev =
        IncrementalEvaluator::with_selection(problem, &SelectionSet::from_mask(lo, problem.len()));
    let mut mask = lo;
    loop {
        visit(mask, &mut ev);
        mask += 1;
        if mask >= hi {
            return;
        }
        let rising = mask.trailing_zeros() as usize;
        for k in 0..rising {
            ev.unflip(k);
        }
        ev.flip(rising);
    }
}

/// Splits `0..total` into up to `threads` contiguous chunks, runs
/// `run(lo, hi)` on each in its own thread, and returns the results in
/// ascending chunk order — so any first-wins merge over the results
/// reproduces a serial ascending scan exactly.
pub(crate) fn chunked<T: Send>(
    total: u64,
    threads: usize,
    run: impl Fn(u64, u64) -> T + Sync,
) -> Vec<T> {
    let chunk = total.div_ceil(threads as u64);
    let run = &run;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .filter_map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(total);
                (lo < hi).then(|| scope.spawn(move |_| run(lo, hi)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope failed")
}

/// Thread count for a sweep over `2^n` subsets: every available core
/// once `n` reaches [`crate::PARALLEL_THRESHOLD`], serial below it
/// (thread setup would dominate).
pub(crate) fn auto_threads(n: usize) -> usize {
    if n >= crate::PARALLEL_THRESHOLD {
        std::thread::available_parallelism().map_or(1, |t| t.get())
    } else {
        1
    }
}
