//! Data-size quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Gigabytes per terabyte.
///
/// The paper uses binary multiples: its Example 3 writes "0.5 TB (512 GB)"
/// and "2 TB (2048 GB)", so tier thresholds such as "first 1 TB" mean
/// 1024 GB here.
pub const GB_PER_TB: f64 = 1024.0;

/// A non-negative data size in gigabytes.
///
/// Sizes are the unit the paper's functions `s()` return (e.g. `s(DS)` is the
/// dataset size in GB). Construction panics on negative or non-finite input —
/// a negative size is always a logic error, never data.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Gb(f64);

impl Gb {
    /// Zero bytes.
    pub const ZERO: Gb = Gb(0.0);

    /// Builds a size from gigabytes.
    #[inline]
    pub fn new(gb: f64) -> Self {
        assert!(
            gb.is_finite() && gb >= 0.0,
            "size must be finite and >= 0, got {gb}"
        );
        Gb(gb)
    }

    /// Builds a size from terabytes (binary: 1 TB = 1024 GB).
    #[inline]
    pub fn from_tb(tb: f64) -> Self {
        Gb::new(tb * GB_PER_TB)
    }

    /// Builds a size from raw bytes (1 GB = 2^30 bytes).
    #[inline]
    pub fn from_bytes(bytes: u64) -> Self {
        Gb(bytes as f64 / (1u64 << 30) as f64)
    }

    /// The size in gigabytes.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The size in bytes (1 GB = 2^30 bytes), saturating.
    #[inline]
    pub fn as_bytes(self) -> u64 {
        (self.0 * (1u64 << 30) as f64) as u64
    }

    /// Subtraction clamped at zero: `10 GB - 1 GB free tier = 9 GB`,
    /// `0.5 GB - 1 GB free tier = 0 GB`.
    #[inline]
    pub fn saturating_sub(self, rhs: Gb) -> Gb {
        Gb((self.0 - rhs.0).max(0.0))
    }

    /// The smaller of two sizes.
    #[inline]
    pub fn min(self, other: Gb) -> Gb {
        Gb(self.0.min(other.0))
    }

    /// The larger of two sizes.
    #[inline]
    pub fn max(self, other: Gb) -> Gb {
        Gb(self.0.max(other.0))
    }

    /// Total-order comparison (sizes are never NaN, so this is safe).
    #[inline]
    pub fn cmp_total(self, other: Gb) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Gb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= GB_PER_TB {
            write!(f, "{:.2} TB", self.0 / GB_PER_TB)
        } else if self.0 >= 1.0 || self.0 == 0.0 {
            write!(f, "{:.2} GB", self.0)
        } else {
            write!(f, "{:.1} MB", self.0 * 1024.0)
        }
    }
}

impl fmt::Debug for Gb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gb({})", self.0)
    }
}

impl Add for Gb {
    type Output = Gb;
    #[inline]
    fn add(self, rhs: Gb) -> Gb {
        Gb(self.0 + rhs.0)
    }
}

impl AddAssign for Gb {
    #[inline]
    fn add_assign(&mut self, rhs: Gb) {
        self.0 += rhs.0;
    }
}

impl Sub for Gb {
    type Output = Gb;
    /// Panics (in debug) if the result would be negative; use
    /// [`Gb::saturating_sub`] when the clamp is intended.
    #[inline]
    fn sub(self, rhs: Gb) -> Gb {
        debug_assert!(self.0 >= rhs.0, "size subtraction underflow");
        Gb((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Gb {
    #[inline]
    fn sub_assign(&mut self, rhs: Gb) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Gb {
    type Output = Gb;
    #[inline]
    fn mul(self, rhs: f64) -> Gb {
        Gb::new(self.0 * rhs)
    }
}

impl Div<f64> for Gb {
    type Output = Gb;
    #[inline]
    fn div(self, rhs: f64) -> Gb {
        Gb::new(self.0 / rhs)
    }
}

impl Sum for Gb {
    fn sum<I: Iterator<Item = Gb>>(iter: I) -> Gb {
        iter.fold(Gb::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Gb> for Gb {
    fn sum<I: Iterator<Item = &'a Gb>>(iter: I) -> Gb {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Gb::from_tb(0.5).value(), 512.0);
        assert_eq!(Gb::from_tb(2.0).value(), 2048.0);
        assert_eq!(Gb::from_bytes(1 << 30).value(), 1.0);
        assert_eq!(Gb::new(1.0).as_bytes(), 1 << 30);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Gb::new(10.0).saturating_sub(Gb::new(1.0)).value(), 9.0);
        assert_eq!(Gb::new(0.5).saturating_sub(Gb::new(1.0)), Gb::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Gb::new(500.0).to_string(), "500.00 GB");
        assert_eq!(Gb::from_tb(2.5).to_string(), "2.50 TB");
        assert_eq!(Gb::new(0.5).to_string(), "512.0 MB");
        assert_eq!(Gb::ZERO.to_string(), "0.00 GB");
    }

    #[test]
    #[should_panic(expected = "size must be finite")]
    fn negative_size_panics() {
        let _ = Gb::new(-1.0);
    }

    #[test]
    fn arithmetic() {
        let total: Gb = [Gb::new(500.0), Gb::new(50.0)].iter().sum();
        assert_eq!(total.value(), 550.0);
        assert_eq!((Gb::new(10.0) * 2.0).value(), 20.0);
        assert_eq!((Gb::new(10.0) / 2.0).value(), 5.0);
        assert_eq!(Gb::new(3.0).min(Gb::new(4.0)).value(), 3.0);
        assert_eq!(Gb::new(3.0).max(Gb::new(4.0)).value(), 4.0);
    }
}
