//! Duration quantities: compute hours and storage months.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Average hours in a month, used only when a single number must bridge the
/// two clocks (e.g. "queries are posed during day-time and maintenance at
/// night" scheduling checks). The paper never needs this conversion in its
/// formulas: compute is billed in hours and storage in months independently.
pub const HOURS_PER_MONTH: f64 = 730.0;

/// A non-negative duration in hours — the unit compute time is billed in.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Hours(f64);

impl Hours {
    /// Zero duration.
    pub const ZERO: Hours = Hours(0.0);

    /// Builds a duration; panics on negative or non-finite input.
    #[inline]
    pub fn new(hours: f64) -> Self {
        assert!(
            hours.is_finite() && hours >= 0.0,
            "duration must be finite and >= 0, got {hours}"
        );
        Hours(hours)
    }

    /// Builds a duration from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Hours::new(minutes / 60.0)
    }

    /// Builds a duration from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        Hours::new(secs / 3600.0)
    }

    /// The duration in hours.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The duration in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 * 3600.0
    }

    /// Rounds up to the next whole hour: the paper's `RoundUp` in Example 2
    /// ("every started hour is charged"). Exact whole hours stay unchanged.
    #[inline]
    pub fn round_up_whole(self) -> Hours {
        Hours(self.0.ceil())
    }

    /// Subtraction clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Hours) -> Hours {
        Hours((self.0 - rhs.0).max(0.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Hours) -> Hours {
        Hours(self.0.min(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Hours) -> Hours {
        Hours(self.0.max(other.0))
    }

    /// Total-order comparison (durations are never NaN).
    #[inline]
    pub fn cmp_total(self, other: Hours) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Hours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 || self.0 == 0.0 {
            write!(f, "{:.2} h", self.0)
        } else if self.0 >= 1.0 / 60.0 {
            write!(f, "{:.1} min", self.0 * 60.0)
        } else {
            write!(f, "{:.2} s", self.0 * 3600.0)
        }
    }
}

impl fmt::Debug for Hours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hours({})", self.0)
    }
}

impl Add for Hours {
    type Output = Hours;
    #[inline]
    fn add(self, rhs: Hours) -> Hours {
        Hours(self.0 + rhs.0)
    }
}

impl AddAssign for Hours {
    #[inline]
    fn add_assign(&mut self, rhs: Hours) {
        self.0 += rhs.0;
    }
}

impl Sub for Hours {
    type Output = Hours;
    #[inline]
    fn sub(self, rhs: Hours) -> Hours {
        debug_assert!(self.0 >= rhs.0, "duration subtraction underflow");
        Hours((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Hours {
    #[inline]
    fn sub_assign(&mut self, rhs: Hours) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Hours {
    type Output = Hours;
    #[inline]
    fn mul(self, rhs: f64) -> Hours {
        Hours::new(self.0 * rhs)
    }
}

impl Div<f64> for Hours {
    type Output = Hours;
    #[inline]
    fn div(self, rhs: f64) -> Hours {
        Hours::new(self.0 / rhs)
    }
}

impl Sum for Hours {
    fn sum<I: Iterator<Item = Hours>>(iter: I) -> Hours {
        iter.fold(Hours::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Hours> for Hours {
    fn sum<I: Iterator<Item = &'a Hours>>(iter: I) -> Hours {
        iter.copied().sum()
    }
}

/// A non-negative duration in months — the unit storage is billed in.
///
/// Months are kept distinct from [`Hours`] on purpose: the paper bills
/// storage per month and compute per hour, and mixing the clocks is a unit
/// error the type system should catch.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Months(f64);

impl Months {
    /// Zero duration.
    pub const ZERO: Months = Months(0.0);

    /// Builds a duration; panics on negative or non-finite input.
    #[inline]
    pub fn new(months: f64) -> Self {
        assert!(
            months.is_finite() && months >= 0.0,
            "duration must be finite and >= 0, got {months}"
        );
        Months(months)
    }

    /// The duration in months.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Approximate conversion to hours via [`HOURS_PER_MONTH`].
    #[inline]
    pub fn as_hours_approx(self) -> Hours {
        Hours::new(self.0 * HOURS_PER_MONTH)
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Months) -> Months {
        Months(self.0.min(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Months) -> Months {
        Months(self.0.max(other.0))
    }

    /// Total-order comparison.
    #[inline]
    pub fn cmp_total(self, other: Months) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Months {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mo", self.0)
    }
}

impl fmt::Debug for Months {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Months({})", self.0)
    }
}

impl Add for Months {
    type Output = Months;
    #[inline]
    fn add(self, rhs: Months) -> Months {
        Months(self.0 + rhs.0)
    }
}

impl Sub for Months {
    type Output = Months;
    #[inline]
    fn sub(self, rhs: Months) -> Months {
        debug_assert!(self.0 >= rhs.0, "duration subtraction underflow");
        Months((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Months {
    type Output = Months;
    #[inline]
    fn mul(self, rhs: f64) -> Months {
        Months::new(self.0 * rhs)
    }
}

impl Sum for Months {
    fn sum<I: Iterator<Item = Months>>(iter: I) -> Months {
        iter.fold(Months::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_whole_hours() {
        assert_eq!(Hours::new(50.0).round_up_whole().value(), 50.0);
        assert_eq!(Hours::new(49.01).round_up_whole().value(), 50.0);
        assert_eq!(Hours::new(0.2).round_up_whole().value(), 1.0);
        assert_eq!(Hours::ZERO.round_up_whole(), Hours::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(Hours::from_minutes(90.0).value(), 1.5);
        assert_eq!(Hours::from_secs(7200.0).value(), 2.0);
        assert_eq!(Hours::new(2.0).as_secs(), 7200.0);
        assert_eq!(Months::new(2.0).as_hours_approx().value(), 1460.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Hours::new(40.0).to_string(), "40.00 h");
        assert_eq!(Hours::new(0.5).to_string(), "30.0 min");
        assert_eq!(Hours::from_secs(10.0).to_string(), "10.00 s");
        assert_eq!(Months::new(12.0).to_string(), "12.0 mo");
    }

    #[test]
    fn saturating_and_ordering() {
        assert_eq!(Hours::new(1.0).saturating_sub(Hours::new(2.0)), Hours::ZERO);
        assert_eq!(Hours::new(3.0).min(Hours::new(2.0)).value(), 2.0);
        assert_eq!(Hours::new(3.0).max(Hours::new(2.0)).value(), 3.0);
        assert_eq!(Months::new(3.0).min(Months::new(2.0)).value(), 2.0);
    }

    #[test]
    fn sums() {
        let t: Hours = [Hours::new(0.2), Hours::new(0.3)].iter().sum();
        assert!((t.value() - 0.5).abs() < 1e-12);
        let m: Months = [Months::new(7.0), Months::new(5.0)].into_iter().sum();
        assert_eq!(m.value(), 12.0);
    }

    #[test]
    #[should_panic(expected = "duration must be finite")]
    fn negative_duration_panics() {
        let _ = Hours::new(-0.1);
    }
}
