//! Fixed-point monetary amounts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of micro-dollars in one dollar.
pub const MICROS_PER_DOLLAR: i128 = 1_000_000;

/// A signed monetary amount stored as an integer count of micro-dollars.
///
/// Every price in the paper (cents-per-GB rates, fractional-cent tier rates)
/// is an exact multiple of one micro-dollar, so all of the paper's worked
/// examples are reproduced without floating-point drift. Amounts may be
/// negative: including a materialized view can *reduce* total cost, and the
/// selection algorithms reason about such deltas directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Money(i128);

impl Money {
    /// The zero amount.
    pub const ZERO: Money = Money(0);

    /// Largest representable amount; used as an "infinite" sentinel by the
    /// dynamic-programming solvers.
    pub const MAX: Money = Money(i128::MAX);

    /// Builds an amount from raw micro-dollars.
    #[inline]
    pub const fn from_micros(micros: i128) -> Self {
        Money(micros)
    }

    /// Builds an amount from whole dollars.
    #[inline]
    pub const fn from_dollars(dollars: i64) -> Self {
        Money(dollars as i128 * MICROS_PER_DOLLAR)
    }

    /// Builds an amount from whole cents.
    #[inline]
    pub const fn from_cents(cents: i64) -> Self {
        Money(cents as i128 * 10_000)
    }

    /// Parses a decimal dollar string such as `"0.12"`, `"-3.5"` or `"924"`.
    ///
    /// At most six fractional digits are accepted because that is the
    /// resolution of the representation; this is a parser for *prices written
    /// in configuration and tests*, not for arbitrary user input.
    pub fn from_dollars_str(s: &str) -> Result<Self, MoneyParseError> {
        let s = s.trim();
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(MoneyParseError::Empty);
        }
        let (int_part, frac_part) = match digits.split_once('.') {
            Some((i, f)) => (i, f),
            None => (digits, ""),
        };
        if frac_part.len() > 6 {
            return Err(MoneyParseError::TooPrecise);
        }
        let int_part = if int_part.is_empty() { "0" } else { int_part };
        let whole: i128 = int_part
            .parse::<i128>()
            .map_err(|_| MoneyParseError::Invalid)?;
        let mut frac: i128 = 0;
        if !frac_part.is_empty() {
            frac = frac_part
                .parse::<i128>()
                .map_err(|_| MoneyParseError::Invalid)?;
            // "0.12" means 120_000 micro-dollars: right-pad to six digits.
            for _ in frac_part.len()..6 {
                frac *= 10;
            }
        }
        let micros = whole
            .checked_mul(MICROS_PER_DOLLAR)
            .and_then(|w| w.checked_add(frac))
            .ok_or(MoneyParseError::Overflow)?;
        Ok(Money(if neg { -micros } else { micros }))
    }

    /// Raw micro-dollar count.
    #[inline]
    pub const fn micros(self) -> i128 {
        self.0
    }

    /// Lossy conversion to floating-point dollars (reporting only).
    #[inline]
    pub fn to_dollars_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_DOLLAR as f64
    }

    /// Multiplies the amount by a dimensionless `f64` factor (a number of
    /// gigabytes, hours, instances, …), rounding the result to the nearest
    /// micro-dollar (ties away from zero, like `f64::round`).
    ///
    /// This is the *single* place where continuous quantities meet money;
    /// keeping the rounding here makes the cost formulas deterministic.
    #[inline]
    pub fn scale(self, factor: f64) -> Money {
        debug_assert!(factor.is_finite(), "money scaled by non-finite factor");
        Money(((self.0 as f64) * factor).round() as i128)
    }

    /// `true` when the amount is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Saturating addition; used by solvers that mix `Money::MAX` sentinels.
    #[inline]
    pub const fn saturating_add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }

    /// Rounds *up* to the next whole cent. Some CSP invoices bill at cent
    /// granularity; exposed for the billing simulator's invoice rendering.
    pub fn ceil_cents(self) -> Money {
        let per_cent = 10_000;
        let rem = self.0.rem_euclid(per_cent);
        if rem == 0 {
            self
        } else {
            Money(self.0 + (per_cent - rem))
        }
    }

    /// Absolute value.
    #[inline]
    pub const fn abs(self) -> Money {
        Money(self.0.abs())
    }

    /// The larger of two amounts.
    #[inline]
    pub fn max(self, other: Money) -> Money {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two amounts.
    #[inline]
    pub fn min(self, other: Money) -> Money {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

/// Error returned by [`Money::from_dollars_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoneyParseError {
    /// The input contained no digits.
    Empty,
    /// More than six fractional digits were supplied.
    TooPrecise,
    /// A component was not a valid number.
    Invalid,
    /// The value does not fit in the representation.
    Overflow,
}

impl fmt::Display for MoneyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoneyParseError::Empty => write!(f, "empty money literal"),
            MoneyParseError::TooPrecise => {
                write!(f, "money literal has more than six fractional digits")
            }
            MoneyParseError::Invalid => write!(f, "malformed money literal"),
            MoneyParseError::Overflow => write!(f, "money literal out of range"),
        }
    }
}

impl std::error::Error for MoneyParseError {}

impl fmt::Display for Money {
    /// Renders as `$d.cc`, trimming trailing zeros beyond two decimals:
    /// `$12.00`, `$1.08`, `$2101.76`, `$0.0001`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let whole = abs / MICROS_PER_DOLLAR as u128;
        let micros = (abs % MICROS_PER_DOLLAR as u128) as u32;
        if micros.is_multiple_of(10_000) {
            write!(f, "{sign}${whole}.{:02}", micros / 10_000)
        } else {
            let mut frac = format!("{micros:06}");
            while frac.ends_with('0') {
                frac.pop();
            }
            write!(f, "{sign}${whole}.{frac}")
        }
    }
}

impl fmt::Debug for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Money({self})")
    }
}

impl Add for Money {
    type Output = Money;
    #[inline]
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    #[inline]
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    #[inline]
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    #[inline]
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    #[inline]
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    #[inline]
    fn mul(self, rhs: i64) -> Money {
        Money(self.0 * rhs as i128)
    }
}

impl Mul<u32> for Money {
    type Output = Money;
    #[inline]
    fn mul(self, rhs: u32) -> Money {
        Money(self.0 * rhs as i128)
    }
}

impl Mul<i32> for Money {
    type Output = Money;
    #[inline]
    fn mul(self, rhs: i32) -> Money {
        Money(self.0 * rhs as i128)
    }
}

impl Div<i64> for Money {
    type Output = Money;
    #[inline]
    fn div(self, rhs: i64) -> Money {
        Money(self.0 / rhs as i128)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Money> for Money {
    fn sum<I: Iterator<Item = &'a Money>>(iter: I) -> Money {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_prices() {
        assert_eq!(Money::from_dollars_str("0.12").unwrap().micros(), 120_000);
        assert_eq!(Money::from_dollars_str("0.14").unwrap().micros(), 140_000);
        assert_eq!(Money::from_dollars_str("0.125").unwrap().micros(), 125_000);
        assert_eq!(
            Money::from_dollars_str("924").unwrap(),
            Money::from_dollars(924)
        );
        assert_eq!(Money::from_dollars_str(".5").unwrap().micros(), 500_000);
        assert_eq!(Money::from_dollars_str("-0.03").unwrap().micros(), -30_000);
    }

    #[test]
    fn rejects_bad_literals() {
        assert_eq!(Money::from_dollars_str(""), Err(MoneyParseError::Empty));
        assert_eq!(
            Money::from_dollars_str("1.1234567"),
            Err(MoneyParseError::TooPrecise)
        );
        assert_eq!(
            Money::from_dollars_str("12a"),
            Err(MoneyParseError::Invalid)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Money::from_dollars(12).to_string(), "$12.00");
        assert_eq!(
            Money::from_dollars_str("1.08").unwrap().to_string(),
            "$1.08"
        );
        assert_eq!(
            Money::from_dollars_str("-2101.76").unwrap().to_string(),
            "-$2101.76"
        );
        assert_eq!(Money::from_micros(100).to_string(), "$0.0001");
        assert_eq!(Money::from_micros(123_456).to_string(), "$0.123456");
    }

    #[test]
    fn scale_rounds_to_nearest_micro() {
        let rate = Money::from_dollars_str("0.12").unwrap();
        assert_eq!(rate.scale(9.0), Money::from_dollars_str("1.08").unwrap());
        // A third of a micro-dollar rounds away.
        assert_eq!(Money::from_micros(1).scale(0.4), Money::ZERO);
        assert_eq!(Money::from_micros(1).scale(0.6), Money::from_micros(1));
    }

    #[test]
    fn ceil_cents_behaviour() {
        assert_eq!(Money::from_micros(1).ceil_cents(), Money::from_cents(1));
        assert_eq!(Money::from_cents(108).ceil_cents(), Money::from_cents(108));
        // Negative amounts move toward zero (rem_euclid semantics).
        assert_eq!(
            Money::from_micros(-15_000).ceil_cents(),
            Money::from_cents(-1)
        );
    }

    #[test]
    fn arithmetic_and_sum() {
        let a = Money::from_dollars(50);
        let b = Money::from_dollars_str("9.6").unwrap();
        assert_eq!((a - b).to_string(), "$40.40");
        assert_eq!((-b).to_string(), "-$9.60");
        let total: Money = [a, b, Money::from_cents(40)].iter().sum();
        assert_eq!(total.to_string(), "$60.00");
        assert_eq!(b * 2, Money::from_dollars_str("19.2").unwrap());
        assert_eq!(a / 2, Money::from_dollars(25));
    }

    #[test]
    fn ordering_helpers() {
        let a = Money::from_dollars(1);
        let b = Money::from_dollars(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(Money::from_micros(-1).is_negative());
        assert!(!Money::ZERO.is_negative());
        assert_eq!(Money::from_micros(-5).abs(), Money::from_micros(5));
    }
}
