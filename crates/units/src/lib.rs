//! Quantity types shared by every crate in the workspace.
//!
//! The paper's cost models multiply three kinds of quantities:
//!
//! * **money** — cloud prices, e.g. `$0.12` per instance-hour;
//! * **data sizes** — gigabytes stored or transferred;
//! * **durations** — compute hours and storage months.
//!
//! Monetary values use a fixed-point representation ([`Money`], an integer
//! count of micro-dollars) so that every figure printed in the paper is
//! exactly representable and golden tests compare bit-for-bit. Sizes and
//! durations are `f64` newtypes ([`Gb`], [`Hours`], [`Months`]) with the
//! rounding rule applied exactly once, at the money boundary (see
//! [`Money::scale`]).
//!
//! ```
//! use mv_units::{Gb, Hours, Money};
//!
//! // Example 2 of the paper: 50 h on two small instances at $0.12/h.
//! let hourly = Money::from_dollars_str("0.12").unwrap();
//! let cost = hourly.scale(Hours::new(50.0).value()) * 2i64;
//! assert_eq!(cost, Money::from_dollars_str("12.00").unwrap());
//! assert_eq!(cost.to_string(), "$12.00");
//!
//! // Example 1: (10 - 1) GB of outbound transfer at $0.12/GB.
//! let billed = Gb::new(10.0) - Gb::new(1.0);
//! assert_eq!(hourly.scale(billed.value()).to_string(), "$1.08");
//! ```

mod money;
mod size;
mod time;

pub use money::{Money, MoneyParseError, MICROS_PER_DOLLAR};
pub use size::{Gb, GB_PER_TB};
pub use time::{Hours, Months, HOURS_PER_MONTH};

/// Largest admissible per-epoch capacity-interruption probability —
/// the shared clamp of the market layer (`mv-market`, which quotes
/// interruption hazards) and the charging layer (`mv-cost`'s
/// `InterruptionRisk`, which prices them). One constant so the two
/// sides can never clamp at different ceilings; it lives here because
/// `mv-units` is their only common dependency. At `p = 0.99` a build
/// is already expected to run 100×, so nothing meaningful is lost by
/// the cap.
pub const MAX_INTERRUPTION: f64 = 0.99;
