//! Lattice error type.

use std::fmt;

/// Errors raised while building dimensions, lattices and workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// A dimension needs at least the apex plus one level.
    TooFewLevels {
        /// Offending dimension.
        dimension: String,
    },
    /// Level 0 must be the apex (no columns, cardinality 1).
    BadApex {
        /// Offending dimension.
        dimension: String,
    },
    /// A level's columns must extend the previous level's columns.
    BrokenPrefixChain {
        /// Offending dimension.
        dimension: String,
        /// Offending level.
        level: String,
    },
    /// Cardinalities must be non-decreasing toward finer levels.
    NonMonotonicCardinality {
        /// Offending dimension.
        dimension: String,
        /// Offending level.
        level: String,
    },
    /// A lattice needs at least one dimension.
    NoDimensions,
    /// A cuboid's level vector does not match the lattice's dimensions.
    DimensionMismatch,
    /// A set of group-by columns does not correspond to any cuboid.
    NoSuchCuboid {
        /// The unmatched column set.
        columns: Vec<String>,
    },
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::TooFewLevels { dimension } => {
                write!(f, "dimension {dimension:?} needs at least two levels")
            }
            LatticeError::BadApex { dimension } => write!(
                f,
                "dimension {dimension:?}: level 0 must be ALL (no columns, cardinality 1)"
            ),
            LatticeError::BrokenPrefixChain { dimension, level } => write!(
                f,
                "dimension {dimension:?}: level {level:?} does not extend the previous level's columns"
            ),
            LatticeError::NonMonotonicCardinality { dimension, level } => write!(
                f,
                "dimension {dimension:?}: level {level:?} has smaller cardinality than its parent"
            ),
            LatticeError::NoDimensions => write!(f, "a lattice needs at least one dimension"),
            LatticeError::DimensionMismatch => {
                write!(f, "cuboid shape does not match the lattice's dimensions")
            }
            LatticeError::NoSuchCuboid { columns } => {
                write!(f, "no cuboid has exactly the key columns {columns:?}")
            }
        }
    }
}

impl std::error::Error for LatticeError {}
