//! The data-cube lattice substrate.
//!
//! The paper's candidate materialized views are roll-up cuboids of a
//! dimensional lattice (its running example: time × administrative
//! geography). This crate provides the lattice itself — dimensions,
//! cuboids, the derivability partial order — plus size estimation
//! (Cardenas' formula) and the candidate-generation methods the paper
//! defers to prior work for.
//!
//! ```
//! use mv_lattice::{candidates, Lattice, SizeEstimator};
//!
//! let lattice = Lattice::paper_running_example();
//! assert_eq!(lattice.num_cuboids(), 16);
//!
//! let workload = mv_lattice::paper_workload(&lattice);
//! let est = SizeEstimator::new(1_000_000);
//! let picks = candidates::hru_greedy(&lattice, &est, &workload, 4);
//! assert!(picks.len() <= 4);
//! ```

pub mod candidates;
mod cuboid;
mod error;
mod estimate;
mod evolution;
mod hierarchy;
#[allow(clippy::module_inception)]
mod lattice;
pub mod scale;
mod stream;
mod workload;

pub use cuboid::Cuboid;
pub use error::LatticeError;
pub use estimate::{cardenas, SizeEstimator};
pub use evolution::{EvolutionKind, WorkloadEvolution};
pub use hierarchy::{Dimension, Level};
pub use lattice::Lattice;
pub use scale::{ScaleShape, SparseCoverage};
pub use stream::CandidateStream;
pub use workload::{paper_workload, LatticeQuery, LatticeWorkload, LoweredQuery};
