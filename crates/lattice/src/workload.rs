//! Lattice-level workloads.
//!
//! The paper's experimental workload: "10 queries that calculate the total
//! profit per day, month, year and per country, department, and region,
//! such as 'per year and per country'" — i.e. the nine time-level ×
//! geo-level combinations plus the grand total, run in variable subsets of
//! 3, 5 and 10 queries (its Figure 5).

use serde::{Deserialize, Serialize};

use crate::{Cuboid, Lattice, LatticeError};

/// A query pinned to a lattice cuboid, with a monthly frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeQuery {
    /// Query identifier (`"Q1"`, …).
    pub name: String,
    /// The granularity the query groups at.
    pub cuboid: Cuboid,
    /// Executions per billing period (the paper's workload is fixed; 1.0
    /// means "once per period").
    pub frequency: f64,
}

impl LatticeQuery {
    /// A once-per-period query.
    pub fn once(name: impl Into<String>, cuboid: Cuboid) -> Self {
        LatticeQuery {
            name: name.into(),
            cuboid,
            frequency: 1.0,
        }
    }
}

/// An ordered set of lattice queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeWorkload {
    /// The queries.
    pub queries: Vec<LatticeQuery>,
}

impl LatticeWorkload {
    /// Wraps queries, validating them against `lattice`.
    pub fn new(lattice: &Lattice, queries: Vec<LatticeQuery>) -> Result<Self, LatticeError> {
        for q in &queries {
            lattice.check(&q.cuboid)?;
        }
        Ok(LatticeWorkload { queries })
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The first `n` queries (the paper's 3-/5-/10-query subsets).
    pub fn prefix(&self, n: usize) -> LatticeWorkload {
        LatticeWorkload {
            queries: self.queries.iter().take(n).cloned().collect(),
        }
    }

    /// Lowers the workload to engine-executable roll-up descriptions:
    /// each lattice-level query becomes its concrete group-by column
    /// set (the cuboid's key columns under `lattice`'s hierarchy
    /// encoding). This is the ONE place workload cuboids turn into
    /// group-by keys — the advisor's measurement pipeline and the
    /// calibration replay both lower through it, so they are guaranteed
    /// to execute the same queries.
    pub fn lower(&self, lattice: &Lattice) -> Vec<LoweredQuery> {
        self.queries
            .iter()
            .map(|q| LoweredQuery {
                name: q.name.clone(),
                group_by: lattice.key_columns(&q.cuboid),
                frequency: q.frequency,
            })
            .collect()
    }
}

/// A workload query lowered to its executable shape: a named group-by
/// over concrete columns, with its per-period frequency. Engine-agnostic
/// on purpose — the lattice crate does not depend on the engine; callers
/// turn this into an `AggQuery` by adding the measure aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoweredQuery {
    /// Query identifier.
    pub name: String,
    /// The concrete group-by key (hierarchy prefix columns).
    pub group_by: Vec<String>,
    /// Executions per billing period.
    pub frequency: f64,
}

/// The paper's 10-query workload over the running-example lattice, ordered
/// so its 3- and 5-query prefixes are meaningful mixes of granularities:
///
/// 1. `Q1` year×country  2. `Q2` month×country  3. `Q3` year×region
/// 4. `Q4` month×region  5. `Q5` day×country    6. `Q6` year×department
/// 7. `Q7` day×region    8. `Q8` month×department
/// 9. `Q9` day×department  10. `Q10` grand total.
pub fn paper_workload(lattice: &Lattice) -> LatticeWorkload {
    // Level indices: time 0=ALL,1=year,2=month,3=day; geo 0=ALL,1=country,
    // 2=region,3=department.
    let combos: [(u8, u8); 10] = [
        (1, 1),
        (2, 1),
        (1, 2),
        (2, 2),
        (3, 1),
        (1, 3),
        (3, 2),
        (2, 3),
        (3, 3),
        (0, 0),
    ];
    let queries = combos
        .iter()
        .enumerate()
        .map(|(i, (t, g))| LatticeQuery::once(format!("Q{}", i + 1), Cuboid::new(vec![*t, *g])))
        .collect();
    LatticeWorkload::new(lattice, queries).expect("paper workload fits the paper lattice")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_shape() {
        let l = Lattice::paper_running_example();
        let w = paper_workload(&l);
        assert_eq!(w.len(), 10);
        assert_eq!(w.queries[0].name, "Q1");
        assert_eq!(l.label(&w.queries[0].cuboid), "year×country");
        assert_eq!(l.label(&w.queries[9].cuboid), "ALL×ALL");
        // Distinct cuboids.
        let mut cs: Vec<_> = w.queries.iter().map(|q| q.cuboid.clone()).collect();
        cs.sort();
        cs.dedup();
        assert_eq!(cs.len(), 10);
    }

    #[test]
    fn prefixes() {
        let l = Lattice::paper_running_example();
        let w = paper_workload(&l);
        assert_eq!(w.prefix(3).len(), 3);
        assert_eq!(w.prefix(5).len(), 5);
        assert_eq!(w.prefix(100).len(), 10);
        assert!(!w.prefix(3).is_empty());
        assert!(w.prefix(0).is_empty());
    }

    #[test]
    fn validation_rejects_foreign_cuboids() {
        let l = Lattice::paper_running_example();
        let bad = LatticeWorkload::new(&l, vec![LatticeQuery::once("q", Cuboid::new(vec![9, 9]))]);
        assert!(bad.is_err());
    }

    #[test]
    fn frequencies_default_to_once() {
        let q = LatticeQuery::once("q", Cuboid::new(vec![1, 1]));
        assert_eq!(q.frequency, 1.0);
    }
}
