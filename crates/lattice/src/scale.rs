//! Synthetic sparse coverage at scale: the shape generator behind the
//! n = 2 000 / m = 50 000 evaluator benchmarks.
//!
//! Real lattices at that size are too expensive to enumerate per bench
//! iteration, and the evaluator only ever sees a problem through its
//! *coverage structure* — which candidate answers which query, how much
//! faster. [`ScaleShape::sparse_coverage`] produces exactly that
//! structure as a CSR triple (offsets / query ids / speedups), in pure
//! numbers with no costing attached, so `mv-cost`-level charge
//! construction stays where the cost models live (`mvcloud`'s
//! `scale_problem`). Generation is deterministic per seed and
//! allocation-lean: one pass per candidate, ids emitted ascending.
//!
//! Two skews keep the synthetic shape honest to a roll-up lattice:
//!
//! * **degree skew** — candidate answer-list lengths follow a rough
//!   power law around [`ScaleShape::mean_coverage`] (a few broad
//!   cuboids answer many queries; most answer a handful), and
//! * **popularity skew** — answer lists cluster around per-candidate
//!   anchor queries rather than spraying uniformly, so some queries
//!   collect many answerers (exercising top-k pruning) while most keep
//!   one or two.

use serde::{Deserialize, Serialize};

/// Parameters of a synthetic sparse workload/candidate shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleShape {
    /// Workload queries (`m`).
    pub queries: usize,
    /// Candidate views (`n`).
    pub candidates: usize,
    /// Mean answer-list length per candidate; individual degrees skew
    /// around it between `1` and roughly `8×` the mean.
    pub mean_coverage: usize,
    /// Generation seed.
    pub seed: u64,
}

impl ScaleShape {
    /// The benchmark headline shape: n = 2 000 candidates over an
    /// m = 50 000-query workload at mean coverage 12 (≈ 24 000 answer
    /// entries — density 2.4·10⁻⁴, where a dense table would hold 10⁸
    /// slots).
    pub fn benchmark() -> Self {
        ScaleShape {
            queries: 50_000,
            candidates: 2_000,
            mean_coverage: 12,
            seed: 0x53_6361_6c65,
        }
    }

    /// Generates the shape's coverage structure.
    pub fn sparse_coverage(&self) -> SparseCoverage {
        let mut rng = XorShift(self.seed ^ 0x4c_6174_7469_6365);
        let m = self.queries;
        let mut offsets = Vec::with_capacity(self.candidates + 1);
        let mut query_ids = Vec::new();
        let mut speedups = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        offsets.push(0u32);
        for _ in 0..self.candidates {
            // Degree: power-law-ish around the mean — u⁻² keeps most
            // candidates near 1–2× the mean and a thin tail out to 8×.
            let u = rng.next_f64().max(1e-9);
            let deg = ((self.mean_coverage as f64 * 0.5 / u.sqrt()) as usize)
                .clamp(1, (8 * self.mean_coverage).min(m.max(1)));
            // Answer list: cluster around an anchor query with a window
            // a few times the degree, plus occasional far jumps, so
            // answerers pile up on popular queries.
            let anchor = (rng.next_u64() as usize) % m.max(1);
            let window = (deg * 6).max(8).min(m.max(1));
            scratch.clear();
            while scratch.len() < deg {
                let q = if rng.next_f64() < 0.85 {
                    (anchor + (rng.next_u64() as usize) % window) % m
                } else {
                    (rng.next_u64() as usize) % m
                };
                scratch.push(q as u32);
            }
            scratch.sort_unstable();
            scratch.dedup();
            for &q in scratch.iter() {
                query_ids.push(q);
                // Speedup factor in (0, 1): answering time = base × f,
                // between 50× faster and 2× faster than the base scan.
                speedups.push(rng.range(0.02, 0.5));
            }
            offsets.push(query_ids.len() as u32);
        }
        SparseCoverage {
            queries: m,
            offsets,
            query_ids,
            speedups,
        }
    }
}

/// CSR coverage structure: candidate `k`'s answer list is
/// `query_ids[offsets[k]..offsets[k+1]]` (strictly ascending) with the
/// parallel `speedups` slice giving each answer's time as a fraction of
/// the query's base time.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCoverage {
    /// Workload size the query ids index into.
    pub queries: usize,
    /// Per-candidate span boundaries, `candidates + 1` entries.
    pub offsets: Vec<u32>,
    /// Concatenated answer lists.
    pub query_ids: Vec<u32>,
    /// Parallel speedup fractions in `(0, 1)`.
    pub speedups: Vec<f64>,
}

impl SparseCoverage {
    /// Number of candidates.
    pub fn candidates(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total answer entries across all candidates.
    pub fn entries(&self) -> usize {
        self.query_ids.len()
    }

    /// Candidate `k`'s answer list as parallel (ids, speedups) slices.
    pub fn answer_list(&self, k: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[k] as usize;
        let hi = self.offsets[k + 1] as usize;
        (&self.query_ids[lo..hi], &self.speedups[lo..hi])
    }
}

/// The same splitmix-style generator the select-crate fixtures use;
/// private so the crate needs no RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleShape {
        ScaleShape {
            queries: 500,
            candidates: 40,
            mean_coverage: 6,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().sparse_coverage();
        let b = small().sparse_coverage();
        assert_eq!(a, b);
        let c = ScaleShape { seed: 8, ..small() }.sparse_coverage();
        assert_ne!(a, c);
    }

    #[test]
    fn lists_are_ascending_unique_and_in_range() {
        let cov = small().sparse_coverage();
        assert_eq!(cov.candidates(), 40);
        for k in 0..cov.candidates() {
            let (ids, ups) = cov.answer_list(k);
            assert!(!ids.is_empty(), "candidate {k} answers nothing");
            assert_eq!(ids.len(), ups.len());
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
            assert!(ids.iter().all(|&q| (q as usize) < cov.queries));
            assert!(ups.iter().all(|&f| f > 0.0 && f < 1.0));
        }
    }

    #[test]
    fn shape_is_sparse_with_popularity_skew() {
        let cov = small().sparse_coverage();
        // Far from dense…
        assert!(cov.entries() < 500 * 40 / 10, "dense: {}", cov.entries());
        // …and clustered: some query has strictly more answerers than
        // the uniform expectation.
        let mut per_query = vec![0usize; cov.queries];
        for &q in &cov.query_ids {
            per_query[q as usize] += 1;
        }
        let max = per_query.iter().max().copied().unwrap();
        assert!(max >= 3, "no popular query emerged: max degree {max}");
    }

    #[test]
    fn benchmark_shape_has_the_headline_dimensions() {
        let s = ScaleShape::benchmark();
        assert_eq!((s.queries, s.candidates), (50_000, 2_000));
    }
}
