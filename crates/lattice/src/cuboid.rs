//! Cuboids and the derivability order.

use serde::{Deserialize, Serialize};

/// A cuboid: one level index per dimension (index 0 = apex = coarsest).
///
/// The derivability ("fineness") order: `a.covers(b)` means a view stored
/// at `a` can answer a query at `b` — `a` is at least as fine as `b` on
/// every dimension. This is the classical data-cube lattice order of
/// Harinarayan–Rajaraman–Ullman, which the paper's candidate-selection
/// method \[8\] also builds on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cuboid(Vec<u8>);

impl Cuboid {
    /// Builds from per-dimension level indices.
    pub fn new(levels: Vec<u8>) -> Self {
        Cuboid(levels)
    }

    /// Per-dimension level indices.
    pub fn levels(&self) -> &[u8] {
        &self.0
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// `true` when `self` is at least as fine as `other` on every dimension
    /// — i.e. a view at `self` can answer a query at `other`.
    pub fn covers(&self, other: &Cuboid) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Strictly finer: covers and differs.
    pub fn strictly_covers(&self, other: &Cuboid) -> bool {
        self.covers(other) && self != other
    }

    /// The *coarsest* cuboid that covers both inputs: component-wise max.
    /// This is the cheapest single view able to answer both (the "least
    /// common ancestor" along drill-down paths).
    pub fn lca(&self, other: &Cuboid) -> Cuboid {
        debug_assert_eq!(self.0.len(), other.0.len());
        Cuboid(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| *a.max(b))
                .collect(),
        )
    }

    /// The *finest* cuboid both inputs cover: component-wise min (the meet
    /// of the lattice).
    pub fn meet(&self, other: &Cuboid) -> Cuboid {
        debug_assert_eq!(self.0.len(), other.0.len());
        Cuboid(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| *a.min(b))
                .collect(),
        )
    }

    /// Total level count — a cheap "fineness rank" used for ordering
    /// reports (not a linear extension of the partial order across equal
    /// sums).
    pub fn rank(&self) -> u32 {
        self.0.iter().map(|&l| l as u32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_componentwise() {
        let day_dept = Cuboid::new(vec![3, 3]);
        let year_country = Cuboid::new(vec![1, 1]);
        let month_all = Cuboid::new(vec![2, 0]);
        assert!(day_dept.covers(&year_country));
        assert!(day_dept.covers(&month_all));
        assert!(!year_country.covers(&month_all)); // month finer than year
        assert!(!month_all.covers(&year_country)); // country finer than ALL
        assert!(year_country.covers(&year_country));
    }

    #[test]
    fn strict_cover_excludes_self() {
        let c = Cuboid::new(vec![1, 1]);
        assert!(!c.strictly_covers(&c));
        assert!(Cuboid::new(vec![2, 1]).strictly_covers(&c));
    }

    #[test]
    fn lca_and_meet() {
        let a = Cuboid::new(vec![2, 0]); // month × ALL
        let b = Cuboid::new(vec![1, 1]); // year × country
        assert_eq!(a.lca(&b), Cuboid::new(vec![2, 1])); // month × country
        assert_eq!(a.meet(&b), Cuboid::new(vec![1, 0])); // year × ALL
                                                         // LCA covers both inputs.
        assert!(a.lca(&b).covers(&a));
        assert!(a.lca(&b).covers(&b));
        // Both inputs cover the meet.
        assert!(a.covers(&a.meet(&b)));
        assert!(b.covers(&a.meet(&b)));
    }

    #[test]
    fn rank_sums_levels() {
        assert_eq!(Cuboid::new(vec![3, 3]).rank(), 6);
        assert_eq!(Cuboid::new(vec![0, 0]).rank(), 0);
    }
}
