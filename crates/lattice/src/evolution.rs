//! Workload evolution across a billing horizon.
//!
//! The paper fixes one workload for one billing period, but its own
//! setup — dashboard queries by day, maintenance by night, re-billed
//! every period — implies a *repeating* horizon in which query
//! frequencies drift. A [`WorkloadEvolution`] turns a base
//! [`LatticeWorkload`] into a deterministic per-epoch sequence over the
//! **same query universe**: only frequencies change, never the query
//! set or its order. Keeping the universe fixed is what lets a
//! multi-epoch solver warm-start its evaluator across epochs (candidate
//! answer times stay aligned; see `mv_select::epoch`).
//!
//! The drift families cover the scenarios the horizon experiments
//! exercise:
//!
//! * [`EvolutionKind::Drift`] — interest migrates monotonically from
//!   the front of the workload to the back (yesterday's dashboards
//!   fade, new reports ramp up), at a geometric per-epoch rate;
//! * [`EvolutionKind::Burst`] — a rotating query spikes every `period`
//!   epochs (end-of-quarter closes, campaign launches);
//! * [`EvolutionKind::Seasonal`] — frequencies oscillate sinusoidally
//!   with a phase offset per query (weekly/monthly seasonality);
//! * [`EvolutionKind::Static`] — the identity evolution: every epoch
//!   repeats the base workload exactly (the zero-drift reference the
//!   horizon property tests pin against the single-period solve).
//!
//! Every generator is pure and deterministic: epoch `e`'s frequencies
//! depend only on the base workload, the spec and `e`.

use serde::{Deserialize, Serialize};

use crate::LatticeWorkload;

/// The drift family and its knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EvolutionKind {
    /// Identity: every epoch repeats the base workload.
    Static,
    /// Geometric migration of interest across the query list: query `i`
    /// of `n` has signed position `p_i = 2i/(n−1) − 1 ∈ [−1, 1]` and
    /// epoch `e` multiplies its base frequency by `(1 + rate)^(e·p_i)`
    /// — early queries decay, late queries grow, the middle holds.
    Drift {
        /// Per-epoch growth rate at the workload's tail (and decay rate
        /// at its head). Must be ≥ 0; 0 is the identity.
        rate: f64,
    },
    /// Every `period` epochs one query — rotating through the workload
    /// — has its frequency multiplied by `factor` for that epoch only.
    Burst {
        /// Epochs between bursts (≥ 1; epoch 0 bursts query 0).
        period: usize,
        /// Spike multiplier applied to the bursting query (≥ 0).
        factor: f64,
    },
    /// Sinusoidal modulation: epoch `e` multiplies query `i`'s base
    /// frequency by `1 + amplitude·sin(2π·e/period + 2π·i/n)` — each
    /// query peaks at a different point of the cycle.
    Seasonal {
        /// Epochs per full cycle (≥ 1).
        period: usize,
        /// Modulation depth in `[0, 1]` (1 swings between 0× and 2×).
        amplitude: f64,
    },
}

/// A deterministic workload trajectory over a fixed query universe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadEvolution {
    /// The drift family.
    pub kind: EvolutionKind,
}

impl WorkloadEvolution {
    /// The identity evolution.
    pub fn fixed() -> Self {
        WorkloadEvolution {
            kind: EvolutionKind::Static,
        }
    }

    /// Geometric head-to-tail drift (validates `rate ≥ 0`).
    pub fn drift(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be ≥ 0");
        WorkloadEvolution {
            kind: EvolutionKind::Drift { rate },
        }
    }

    /// Rotating bursts every `period` epochs.
    pub fn burst(period: usize, factor: f64) -> Self {
        assert!(period >= 1, "burst period must be ≥ 1");
        assert!(factor >= 0.0 && factor.is_finite(), "factor must be ≥ 0");
        WorkloadEvolution {
            kind: EvolutionKind::Burst { period, factor },
        }
    }

    /// Sinusoidal seasonality (validates `period ≥ 1`, `amplitude ∈
    /// [0, 1]` so frequencies never go negative).
    pub fn seasonal(period: usize, amplitude: f64) -> Self {
        assert!(period >= 1, "seasonal period must be ≥ 1");
        assert!(
            (0.0..=1.0).contains(&amplitude),
            "amplitude must be in [0, 1]"
        );
        WorkloadEvolution {
            kind: EvolutionKind::Seasonal { period, amplitude },
        }
    }

    /// Epoch `epoch`'s frequency multipliers, one per query of an
    /// `n`-query workload. Always finite and ≥ 0.
    pub fn multipliers(&self, n: usize, epoch: usize) -> Vec<f64> {
        match self.kind {
            EvolutionKind::Static => vec![1.0; n],
            EvolutionKind::Drift { rate } => (0..n)
                .map(|i| {
                    let pos = if n <= 1 {
                        0.0
                    } else {
                        2.0 * i as f64 / (n as f64 - 1.0) - 1.0
                    };
                    (1.0 + rate).powf(epoch as f64 * pos)
                })
                .collect(),
            EvolutionKind::Burst { period, factor } => {
                let mut mult = vec![1.0; n];
                if n > 0 && epoch.is_multiple_of(period) {
                    mult[(epoch / period) % n] = factor;
                }
                mult
            }
            EvolutionKind::Seasonal { period, amplitude } => (0..n)
                .map(|i| {
                    // Reduce the epoch modulo the period *before* the
                    // trig so a full-cycle shift reproduces an epoch's
                    // frequencies bit-for-bit (floating-point sin is
                    // not exactly periodic over distinct arguments).
                    let phase = std::f64::consts::TAU
                        * ((epoch % period) as f64 / period as f64 + i as f64 / n.max(1) as f64);
                    (1.0 + amplitude * phase.sin()).max(0.0)
                })
                .collect(),
        }
    }

    /// Epoch `epoch`'s frequencies for `base` (base frequency ×
    /// multiplier, clamped at 0).
    pub fn frequencies(&self, base: &LatticeWorkload, epoch: usize) -> Vec<f64> {
        base.queries
            .iter()
            .zip(self.multipliers(base.len(), epoch))
            .map(|(q, m)| (q.frequency * m).max(0.0))
            .collect()
    }

    /// The full trajectory: `epochs` copies of `base` with evolved
    /// frequencies. The query set, order and cuboids are untouched.
    pub fn epochs(&self, base: &LatticeWorkload, epochs: usize) -> Vec<LatticeWorkload> {
        (0..epochs)
            .map(|e| {
                let mut w = base.clone();
                for (q, f) in w.queries.iter_mut().zip(self.frequencies(base, e)) {
                    q.frequency = f;
                }
                w
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper_workload, Lattice};

    fn base() -> LatticeWorkload {
        paper_workload(&Lattice::paper_running_example())
    }

    #[test]
    fn static_evolution_is_the_identity() {
        let b = base();
        for w in WorkloadEvolution::fixed().epochs(&b, 5) {
            assert_eq!(w, b);
        }
    }

    #[test]
    fn drift_shifts_weight_tailward() {
        let b = base();
        let ev = WorkloadEvolution::drift(0.3);
        let e0 = ev.frequencies(&b, 0);
        let e4 = ev.frequencies(&b, 4);
        assert_eq!(e0, vec![1.0; b.len()], "epoch 0 is the base workload");
        // Head decays, tail grows, monotone across the list.
        assert!(e4[0] < 1.0 && e4[b.len() - 1] > 1.0);
        for pair in e4.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
        // Zero rate is the identity at any epoch.
        assert_eq!(
            WorkloadEvolution::drift(0.0).frequencies(&b, 7),
            vec![1.0; b.len()]
        );
    }

    #[test]
    fn bursts_rotate_and_spike_one_query() {
        let b = base();
        let ev = WorkloadEvolution::burst(2, 10.0);
        for e in 0..8 {
            let f = ev.frequencies(&b, e);
            if e % 2 == 0 {
                let spiked: Vec<usize> = (0..b.len()).filter(|&i| f[i] > 1.0).collect();
                assert_eq!(spiked, vec![(e / 2) % b.len()], "epoch {e}");
                assert_eq!(f[spiked[0]], 10.0);
            } else {
                assert_eq!(f, vec![1.0; b.len()], "off-epoch {e} is unmodified");
            }
        }
    }

    #[test]
    fn seasonal_cycles_and_stays_nonnegative() {
        let b = base();
        let ev = WorkloadEvolution::seasonal(12, 1.0);
        for e in 0..24 {
            for f in ev.frequencies(&b, e) {
                assert!((0.0..=2.0 + 1e-12).contains(&f), "epoch {e}: {f}");
            }
        }
        // Full-period shift reproduces the epoch exactly.
        assert_eq!(ev.frequencies(&b, 3), ev.frequencies(&b, 15));
        // Different queries peak at different epochs (phase offset).
        let e0 = ev.frequencies(&b, 0);
        assert!(e0.iter().any(|&f| f > 1.0) && e0.iter().any(|&f| f < 1.0));
    }

    #[test]
    fn evolution_never_touches_the_query_universe() {
        let b = base();
        for ev in [
            WorkloadEvolution::drift(0.5),
            WorkloadEvolution::burst(3, 0.0),
            WorkloadEvolution::seasonal(4, 0.7),
        ] {
            for w in ev.epochs(&b, 9) {
                assert_eq!(w.len(), b.len());
                for (a, q) in w.queries.iter().zip(&b.queries) {
                    assert_eq!(a.name, q.name);
                    assert_eq!(a.cuboid, q.cuboid);
                    assert!(a.frequency >= 0.0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn overdeep_seasonal_rejected() {
        WorkloadEvolution::seasonal(12, 1.5);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        WorkloadEvolution::burst(0, 2.0);
    }
}
