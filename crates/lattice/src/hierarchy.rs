//! Dimension hierarchies.
//!
//! A dimension is an ordered chain of levels from the apex (`ALL`, one
//! value) down to the finest granularity. Each level carries the *physical
//! key columns* that express it in the denormalized fact table — the
//! prefix-chain encoding used throughout the workspace: the paper's time
//! dimension is `ALL ⊃ year ⊃ (year,month) ⊃ (year,month,day)` and its
//! geography `ALL ⊃ country ⊃ (country,region) ⊃
//! (country,region,department)`.

use serde::{Deserialize, Serialize};

use crate::LatticeError;

/// One level of a dimension hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Level {
    /// Level name (`"ALL"`, `"year"`, `"month"`, …).
    pub name: String,
    /// Physical key columns expressing this level; must extend the previous
    /// level's columns (prefix chain). Empty for the apex.
    pub columns: Vec<String>,
    /// Number of distinct values at this level (domain cardinality).
    pub cardinality: u64,
}

impl Level {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, columns: &[&str], cardinality: u64) -> Self {
        Level {
            name: name.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            cardinality,
        }
    }
}

/// An ordered hierarchy of levels, index 0 = apex (coarsest).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dimension {
    /// Dimension name (`"time"`, `"geography"`, …).
    pub name: String,
    levels: Vec<Level>,
}

impl Dimension {
    /// Builds a dimension, validating:
    /// * at least two levels (apex + one real level);
    /// * level 0 is the apex: no columns, cardinality 1;
    /// * each level's columns strictly extend the previous level's
    ///   (prefix chain);
    /// * cardinalities are non-decreasing toward finer levels and ≥ 1.
    pub fn new(name: impl Into<String>, levels: Vec<Level>) -> Result<Self, LatticeError> {
        let name = name.into();
        if levels.len() < 2 {
            return Err(LatticeError::TooFewLevels { dimension: name });
        }
        if !levels[0].columns.is_empty() || levels[0].cardinality != 1 {
            return Err(LatticeError::BadApex { dimension: name });
        }
        for i in 1..levels.len() {
            let (prev, cur) = (&levels[i - 1], &levels[i]);
            if cur.columns.len() <= prev.columns.len()
                || cur.columns[..prev.columns.len()] != prev.columns[..]
            {
                return Err(LatticeError::BrokenPrefixChain {
                    dimension: name,
                    level: cur.name.clone(),
                });
            }
            if cur.cardinality < prev.cardinality || cur.cardinality == 0 {
                return Err(LatticeError::NonMonotonicCardinality {
                    dimension: name,
                    level: cur.name.clone(),
                });
            }
        }
        Ok(Dimension { name, levels })
    }

    /// An apex level named `"ALL"`.
    pub fn all_level() -> Level {
        Level::new("ALL", &[], 1)
    }

    /// The levels, apex first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Number of levels (including the apex).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The finest level.
    pub fn finest(&self) -> &Level {
        self.levels.last().expect("validated non-empty")
    }

    /// The paper's time dimension over `years` calendar years:
    /// `ALL < year < month < day`.
    pub fn paper_time(years: u64) -> Dimension {
        Dimension::new(
            "time",
            vec![
                Dimension::all_level(),
                Level::new("year", &["year"], years),
                Level::new("month", &["year", "month"], years * 12),
                // ~365.25 days/year; the estimator only needs the order of
                // magnitude.
                Level::new("day", &["year", "month", "day"], years * 365),
            ],
        )
        .expect("paper time dimension is valid")
    }

    /// The paper's geography dimension:
    /// `ALL < country < region < department`, with the cardinalities of the
    /// generator's catalog (6 countries, 14 regions, 36 departments).
    pub fn paper_geography() -> Dimension {
        Dimension::new(
            "geography",
            vec![
                Dimension::all_level(),
                Level::new("country", &["country"], 6),
                Level::new("region", &["country", "region"], 14),
                Level::new("department", &["country", "region", "department"], 36),
            ],
        )
        .expect("paper geography dimension is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_validate() {
        let time = Dimension::paper_time(11);
        assert_eq!(time.depth(), 4);
        assert_eq!(time.finest().name, "day");
        assert_eq!(time.levels()[1].cardinality, 11);

        let geo = Dimension::paper_geography();
        assert_eq!(geo.depth(), 4);
        assert_eq!(geo.finest().columns.len(), 3);
    }

    #[test]
    fn rejects_missing_apex() {
        let err = Dimension::new(
            "d",
            vec![
                Level::new("year", &["year"], 10),
                Level::new("month", &["year", "month"], 120),
            ],
        );
        assert!(matches!(err, Err(LatticeError::BadApex { .. })));
    }

    #[test]
    fn rejects_broken_prefix_chain() {
        let err = Dimension::new(
            "d",
            vec![
                Dimension::all_level(),
                Level::new("year", &["year"], 10),
                // "month" does not extend ["year"].
                Level::new("month", &["month"], 120),
            ],
        );
        assert!(matches!(err, Err(LatticeError::BrokenPrefixChain { .. })));
    }

    #[test]
    fn rejects_shrinking_cardinality() {
        let err = Dimension::new(
            "d",
            vec![
                Dimension::all_level(),
                Level::new("year", &["year"], 10),
                Level::new("month", &["year", "month"], 5),
            ],
        );
        assert!(matches!(
            err,
            Err(LatticeError::NonMonotonicCardinality { .. })
        ));
    }

    #[test]
    fn rejects_single_level() {
        let err = Dimension::new("d", vec![Dimension::all_level()]);
        assert!(matches!(err, Err(LatticeError::TooFewLevels { .. })));
    }
}
