//! Lazy candidate streams.
//!
//! The batch generators in [`crate::candidates`] hand the selection
//! phase a fully-materialized candidate list; the advisor then measures
//! *every* candidate before solving. A [`CandidateStream`] inverts
//! that: it yields cuboids one at a time, in estimated-benefit order, so
//! a streaming consumer can measure/admit candidates incrementally and
//! stop pulling whenever the marginal benefit dries up — without ever
//! materializing (or measuring) the full lattice.
//!
//! Two modes, mirroring the batch generators they drain to:
//!
//! * [`CandidateStream::hru`] — each pull re-runs one step of the
//!   Harinarayan–Rajaraman–Ullman greedy pick over the lazily-walked
//!   lattice, conditioned on everything already yielded. Draining the
//!   stream with limit `k` yields exactly `candidates::hru_greedy(k)`,
//!   in the same order.
//! * [`CandidateStream::closure`] — the workload-closure members
//!   (workload cuboids + pairwise LCAs), pre-scored once by static
//!   benefit per unit space and yielded best-first. Draining it yields
//!   exactly the set `candidates::workload_closure` builds.

use crate::candidates::{next_hru_pick, workload_closure};
use crate::{Cuboid, Lattice, LatticeWorkload, SizeEstimator};

/// A lazy, benefit-ordered source of candidate cuboids.
pub struct CandidateStream<'a> {
    lattice: &'a Lattice,
    est: &'a SizeEstimator,
    workload: &'a LatticeWorkload,
    mode: Mode,
    yielded: Vec<Cuboid>,
    limit: Option<usize>,
}

enum Mode {
    /// One HRU greedy step per pull, conditioned on `yielded`.
    Greedy,
    /// Pre-scored closure members, best-first.
    Ordered(std::vec::IntoIter<Cuboid>),
}

impl<'a> CandidateStream<'a> {
    /// HRU greedy stream: yields the next best benefit-per-space cuboid
    /// given everything yielded so far; drains when no remaining cuboid
    /// has positive benefit. Each pull walks the lattice lazily
    /// ([`Lattice::iter_cuboids`]) — nothing is materialized up front.
    pub fn hru(
        lattice: &'a Lattice,
        est: &'a SizeEstimator,
        workload: &'a LatticeWorkload,
    ) -> Self {
        CandidateStream {
            lattice,
            est,
            workload,
            mode: Mode::Greedy,
            yielded: Vec::new(),
            limit: None,
        }
    }

    /// Workload-closure stream: the closure's members scored once by
    /// frequency-weighted scan savings (against the bare base table) per
    /// unit of expected space, yielded best-first. Ties keep the
    /// closure's canonical (sorted) cuboid order.
    pub fn closure(
        lattice: &'a Lattice,
        est: &'a SizeEstimator,
        workload: &'a LatticeWorkload,
    ) -> Self {
        let members = workload_closure(lattice, workload);
        let base_rows = est.base_rows as f64;
        let mut scored: Vec<(f64, Cuboid)> = members
            .into_iter()
            .map(|c| {
                let rows = est.expected_rows(lattice, &c).max(1.0);
                let saving: f64 = workload
                    .queries
                    .iter()
                    .filter(|q| c.covers(&q.cuboid))
                    .map(|q| (base_rows - rows.min(base_rows)) * q.frequency)
                    .sum();
                (saving / rows, c)
            })
            .collect();
        // Stable sort: equal scores keep the closure's sorted order.
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        CandidateStream {
            lattice,
            est,
            workload,
            mode: Mode::Ordered(
                scored
                    .into_iter()
                    .map(|(_, c)| c)
                    .collect::<Vec<_>>()
                    .into_iter(),
            ),
            yielded: Vec::new(),
            limit: None,
        }
    }

    /// Caps the stream at `k` yielded cuboids.
    pub fn with_limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// How many cuboids have been yielded so far.
    pub fn pulled(&self) -> usize {
        self.yielded.len()
    }

    /// The cuboids yielded so far, in yield order.
    pub fn yielded(&self) -> &[Cuboid] {
        &self.yielded
    }
}

impl Iterator for CandidateStream<'_> {
    type Item = Cuboid;

    fn next(&mut self) -> Option<Cuboid> {
        if let Some(k) = self.limit {
            if self.yielded.len() >= k {
                return None;
            }
        }
        let next = match &mut self.mode {
            Mode::Greedy => next_hru_pick(self.lattice, self.est, self.workload, &self.yielded),
            Mode::Ordered(iter) => iter.next(),
        }?;
        self.yielded.push(next.clone());
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::hru_greedy;
    use crate::workload::paper_workload;

    #[test]
    fn hru_stream_drains_to_batch_picks() {
        let l = Lattice::paper_running_example();
        let est = SizeEstimator::new(1_000_000);
        let w = paper_workload(&l);
        let batch = hru_greedy(&l, &est, &w, 5);
        let streamed: Vec<Cuboid> = CandidateStream::hru(&l, &est, &w).with_limit(5).collect();
        assert_eq!(streamed, batch, "stream must replay greedy's pick order");
        // Unbounded drain equals greedy with a lattice-sized budget.
        let full_batch = hru_greedy(&l, &est, &w, l.num_cuboids());
        let full_stream: Vec<Cuboid> = CandidateStream::hru(&l, &est, &w).collect();
        assert_eq!(full_stream, full_batch);
        assert!(!full_stream.contains(&l.base()));
    }

    #[test]
    fn closure_stream_drains_to_closure_set() {
        let l = Lattice::paper_running_example();
        let est = SizeEstimator::new(1_000_000);
        let w = paper_workload(&l).prefix(5);
        let mut batch = workload_closure(&l, &w);
        let mut streamed: Vec<Cuboid> = CandidateStream::closure(&l, &est, &w).collect();
        streamed.sort();
        batch.sort();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn closure_stream_is_benefit_ordered() {
        let l = Lattice::paper_running_example();
        let est = SizeEstimator::new(1_000_000);
        let w = paper_workload(&l);
        let base_rows = est.base_rows as f64;
        let score = |c: &Cuboid| {
            let rows = est.expected_rows(&l, c).max(1.0);
            let saving: f64 = w
                .queries
                .iter()
                .filter(|q| c.covers(&q.cuboid))
                .map(|q| (base_rows - rows.min(base_rows)) * q.frequency)
                .sum();
            saving / rows
        };
        let streamed: Vec<Cuboid> = CandidateStream::closure(&l, &est, &w).collect();
        for pair in streamed.windows(2) {
            assert!(score(&pair[0]) >= score(&pair[1]), "out of benefit order");
        }
    }

    #[test]
    fn limit_and_pulled_accounting() {
        let l = Lattice::paper_running_example();
        let est = SizeEstimator::new(100_000);
        let w = paper_workload(&l);
        let mut s = CandidateStream::hru(&l, &est, &w).with_limit(3);
        assert_eq!(s.pulled(), 0);
        assert!(s.next().is_some());
        assert!(s.next().is_some());
        assert_eq!(s.pulled(), 2);
        assert!(s.next().is_some());
        assert!(s.next().is_none(), "limit must cap the stream");
        assert_eq!(s.yielded().len(), 3);
    }

    #[test]
    fn iter_cuboids_matches_all_cuboids() {
        let l = Lattice::paper_running_example();
        let lazy: Vec<Cuboid> = l.iter_cuboids().collect();
        assert_eq!(lazy, l.all_cuboids());
        assert_eq!(lazy.len(), l.num_cuboids());
    }
}
