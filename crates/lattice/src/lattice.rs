//! The full cuboid lattice over a set of dimensions.

use serde::{Deserialize, Serialize};

use crate::{Cuboid, Dimension, LatticeError};

/// The data-cube lattice: the cross product of every dimension's levels.
///
/// For the paper's running example (time: ALL/year/month/day × geography:
/// ALL/country/region/department) this is the 16-cuboid lattice its
/// candidate views live in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lattice {
    dims: Vec<Dimension>,
}

impl Lattice {
    /// Builds a lattice from one or more dimensions.
    pub fn new(dims: Vec<Dimension>) -> Result<Self, LatticeError> {
        if dims.is_empty() {
            return Err(LatticeError::NoDimensions);
        }
        Ok(Lattice { dims })
    }

    /// The paper's running-example lattice (11 years of data, the
    /// generator's geography catalog).
    pub fn paper_running_example() -> Lattice {
        Lattice::new(vec![
            Dimension::paper_time(11),
            Dimension::paper_geography(),
        ])
        .expect("paper lattice is valid")
    }

    /// The dimensions.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dims
    }

    /// Total number of cuboids (product of level counts).
    pub fn num_cuboids(&self) -> usize {
        self.dims.iter().map(Dimension::depth).product()
    }

    /// Every cuboid, in lexicographic level order (apex first).
    pub fn all_cuboids(&self) -> Vec<Cuboid> {
        self.iter_cuboids().collect()
    }

    /// Lazily iterates every cuboid in lexicographic level order (apex
    /// first) without materializing the `num_cuboids()`-sized vector —
    /// the streaming candidate generators re-walk the lattice per pull
    /// and must not allocate it each time.
    pub fn iter_cuboids(&self) -> impl Iterator<Item = Cuboid> + '_ {
        let mut next = Some(vec![0u8; self.dims.len()]);
        std::iter::from_fn(move || {
            let current = next.take()?;
            let out = Cuboid::new(current.clone());
            // Odometer increment; exhausted when every digit wraps.
            let mut digits = current;
            let mut i = self.dims.len();
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if (digits[i] as usize) + 1 < self.dims[i].depth() {
                    digits[i] += 1;
                    for d in digits[i + 1..].iter_mut() {
                        *d = 0;
                    }
                    next = Some(digits);
                    break;
                }
            }
            Some(out)
        })
    }

    /// The apex cuboid (every dimension at ALL): the grand total.
    pub fn apex(&self) -> Cuboid {
        Cuboid::new(vec![0; self.dims.len()])
    }

    /// The base cuboid (every dimension at its finest level): the raw fact
    /// table's granularity.
    pub fn base(&self) -> Cuboid {
        Cuboid::new(self.dims.iter().map(|d| (d.depth() - 1) as u8).collect())
    }

    /// Validates that `cuboid` belongs to this lattice.
    pub fn check(&self, cuboid: &Cuboid) -> Result<(), LatticeError> {
        if cuboid.arity() != self.dims.len() {
            return Err(LatticeError::DimensionMismatch);
        }
        for (l, d) in cuboid.levels().iter().zip(&self.dims) {
            if *l as usize >= d.depth() {
                return Err(LatticeError::DimensionMismatch);
            }
        }
        Ok(())
    }

    /// The physical key columns of `cuboid`: concatenation of each
    /// dimension's level columns, in dimension order.
    pub fn key_columns(&self, cuboid: &Cuboid) -> Vec<String> {
        let mut cols = Vec::new();
        for (l, d) in cuboid.levels().iter().zip(&self.dims) {
            cols.extend(d.levels()[*l as usize].columns.iter().cloned());
        }
        cols
    }

    /// Human-readable label, e.g. `"year×country"` or `"ALL×ALL"`.
    pub fn label(&self, cuboid: &Cuboid) -> String {
        cuboid
            .levels()
            .iter()
            .zip(&self.dims)
            .map(|(l, d)| d.levels()[*l as usize].name.clone())
            .collect::<Vec<_>>()
            .join("×")
    }

    /// Product of level cardinalities: the cuboid's key-domain size (an
    /// upper bound on its row count).
    pub fn domain_size(&self, cuboid: &Cuboid) -> u64 {
        cuboid
            .levels()
            .iter()
            .zip(&self.dims)
            .map(|(l, d)| d.levels()[*l as usize].cardinality)
            .fold(1u64, u64::saturating_mul)
    }

    /// Direct parents in the Hasse diagram: one dimension coarsened by one
    /// level (cuboids `self` can be rolled up *to* in one step... direction:
    /// a parent is coarser).
    pub fn parents(&self, cuboid: &Cuboid) -> Vec<Cuboid> {
        let mut out = Vec::new();
        for (i, l) in cuboid.levels().iter().enumerate() {
            if *l > 0 {
                let mut levels = cuboid.levels().to_vec();
                levels[i] -= 1;
                out.push(Cuboid::new(levels));
            }
        }
        out
    }

    /// Direct children in the Hasse diagram: one dimension refined by one
    /// level (finer cuboids).
    pub fn children(&self, cuboid: &Cuboid) -> Vec<Cuboid> {
        let mut out = Vec::new();
        for (i, l) in cuboid.levels().iter().enumerate() {
            if (*l as usize) + 1 < self.dims[i].depth() {
                let mut levels = cuboid.levels().to_vec();
                levels[i] += 1;
                out.push(Cuboid::new(levels));
            }
        }
        out
    }

    /// Maps a set of group-by columns back to the cuboid with exactly those
    /// key columns (order-insensitive).
    pub fn cuboid_for_columns(&self, columns: &[String]) -> Result<Cuboid, LatticeError> {
        let mut want: Vec<&String> = columns.iter().collect();
        want.sort();
        for c in self.all_cuboids() {
            let mut have = self.key_columns(&c);
            have.sort();
            if have.len() == want.len() && have.iter().zip(&want).all(|(a, b)| a == *b) {
                return Ok(c);
            }
        }
        Err(LatticeError::NoSuchCuboid {
            columns: columns.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lattice_has_16_cuboids() {
        let l = Lattice::paper_running_example();
        assert_eq!(l.num_cuboids(), 16);
        assert_eq!(l.all_cuboids().len(), 16);
        // All distinct.
        let mut cs = l.all_cuboids();
        cs.sort();
        cs.dedup();
        assert_eq!(cs.len(), 16);
    }

    #[test]
    fn apex_and_base() {
        let l = Lattice::paper_running_example();
        assert_eq!(l.label(&l.apex()), "ALL×ALL");
        assert_eq!(l.label(&l.base()), "day×department");
        assert!(l.base().covers(&l.apex()));
        assert_eq!(l.domain_size(&l.apex()), 1);
        assert_eq!(l.domain_size(&l.base()), 11 * 365 * 36);
    }

    #[test]
    fn key_columns_concatenate() {
        let l = Lattice::paper_running_example();
        let month_country = Cuboid::new(vec![2, 1]);
        assert_eq!(
            l.key_columns(&month_country),
            vec!["year", "month", "country"]
        );
        assert_eq!(l.label(&month_country), "month×country");
        assert!(l.key_columns(&l.apex()).is_empty());
    }

    #[test]
    fn parents_children_are_hasse_neighbours() {
        let l = Lattice::paper_running_example();
        let c = Cuboid::new(vec![2, 1]);
        let parents = l.parents(&c);
        assert_eq!(parents.len(), 2);
        for p in &parents {
            assert!(c.strictly_covers(p));
            assert_eq!(c.rank() - p.rank(), 1);
        }
        let children = l.children(&c);
        assert_eq!(children.len(), 2);
        for ch in &children {
            assert!(ch.strictly_covers(&c));
        }
        assert!(l.parents(&l.apex()).is_empty());
        assert!(l.children(&l.base()).is_empty());
    }

    #[test]
    fn cuboid_for_columns_roundtrips() {
        let l = Lattice::paper_running_example();
        for c in l.all_cuboids() {
            let cols = l.key_columns(&c);
            assert_eq!(l.cuboid_for_columns(&cols).unwrap(), c);
        }
        assert!(matches!(
            l.cuboid_for_columns(&["nope".to_string()]),
            Err(LatticeError::NoSuchCuboid { .. })
        ));
    }

    #[test]
    fn check_validates_shape() {
        let l = Lattice::paper_running_example();
        assert!(l.check(&Cuboid::new(vec![3, 3])).is_ok());
        assert!(l.check(&Cuboid::new(vec![4, 0])).is_err());
        assert!(l.check(&Cuboid::new(vec![1])).is_err());
    }

    #[test]
    fn empty_lattice_rejected() {
        assert!(matches!(
            Lattice::new(vec![]),
            Err(LatticeError::NoDimensions)
        ));
    }

    #[test]
    fn single_dimension_lattice() {
        let l = Lattice::new(vec![Dimension::paper_time(5)]).unwrap();
        assert_eq!(l.num_cuboids(), 4);
        assert_eq!(l.label(&l.base()), "day");
    }
}
