//! Cuboid size estimation.
//!
//! View sizes drive both sides of the paper's trade-off: the storage cost
//! `Cs` (bigger views cost more per month) and the processing time `t_iV`
//! (bigger views scan slower). When the engine has not materialized a
//! cuboid yet, its row count is estimated with Cardenas' formula — the
//! expected number of occupied cells when `n` rows fall uniformly into `v`
//! key-domain cells:
//!
//! ```text
//! E[groups] = v · (1 − (1 − 1/v)^n)
//! ```
//!
//! which is ≤ min(n, v), asymptotically tight at both ends, and the
//! standard estimator in the view-selection literature.

use mv_units::Gb;
use serde::{Deserialize, Serialize};

use crate::{Cuboid, Lattice};

/// Cardenas' expected-distinct-cells formula.
///
/// Computed in log-space to stay accurate when `v` is huge and `n/v` tiny.
pub fn cardenas(n: u64, v: u64) -> f64 {
    if n == 0 || v == 0 {
        return 0.0;
    }
    let v = v as f64;
    let n = n as f64;
    // (1 − 1/v)^n = exp(n · ln(1 − 1/v)); ln_1p/exp_m1 keep the result
    // accurate when 1/v or the whole exponent is tiny.
    let log_term = n * (-1.0 / v).ln_1p();
    -(v * log_term.exp_m1())
}

/// Size estimator for every cuboid of a lattice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeEstimator {
    /// Fact-table row count.
    pub base_rows: u64,
    /// Bytes per key column (dictionary code / integer width average).
    pub key_bytes_per_column: u64,
    /// Bytes of stored measures per row (sum/count/min/max partials).
    pub measure_bytes: u64,
}

impl SizeEstimator {
    /// Estimator with the workspace's column widths: 8-byte integers /
    /// 4-byte codes average to ~6, and the canonical measure set
    /// (sum + count) is 16 bytes.
    pub fn new(base_rows: u64) -> Self {
        SizeEstimator {
            base_rows,
            key_bytes_per_column: 6,
            measure_bytes: 16,
        }
    }

    /// Expected row count of `cuboid` (Cardenas over its key domain).
    pub fn expected_rows(&self, lattice: &Lattice, cuboid: &Cuboid) -> f64 {
        let domain = lattice.domain_size(cuboid);
        cardenas(self.base_rows, domain)
    }

    /// Expected stored bytes of `cuboid`.
    pub fn expected_bytes(&self, lattice: &Lattice, cuboid: &Cuboid) -> f64 {
        let width = (lattice.key_columns(cuboid).len() as u64 * self.key_bytes_per_column
            + self.measure_bytes) as f64;
        self.expected_rows(lattice, cuboid) * width
    }

    /// Expected stored size of `cuboid` as [`Gb`].
    pub fn expected_gb(&self, lattice: &Lattice, cuboid: &Cuboid) -> Gb {
        Gb::new(self.expected_bytes(lattice, cuboid) / (1u64 << 30) as f64)
    }

    /// The fraction of the base table a scan of this cuboid reads —
    /// the quantity the throughput model turns into `t_iV`.
    pub fn scan_fraction(&self, lattice: &Lattice, cuboid: &Cuboid) -> f64 {
        if self.base_rows == 0 {
            return 0.0;
        }
        (self.expected_rows(lattice, cuboid) / self.base_rows as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardenas_bounds() {
        // Never exceeds n or v.
        for (n, v) in [(10u64, 100u64), (100, 10), (1000, 1000), (1, 1)] {
            let e = cardenas(n, v);
            assert!(e <= n as f64 + 1e-9, "n={n} v={v} e={e}");
            assert!(e <= v as f64 + 1e-9, "n={n} v={v} e={e}");
            assert!(e > 0.0);
        }
        assert_eq!(cardenas(0, 100), 0.0);
        assert_eq!(cardenas(100, 0), 0.0);
    }

    #[test]
    fn cardenas_asymptotics() {
        // n << v: nearly every row lands in its own cell.
        let e = cardenas(100, 1_000_000_000);
        assert!((e - 100.0).abs() < 0.01, "e={e}");
        // n >> v: nearly every cell is occupied.
        let e = cardenas(1_000_000, 100);
        assert!((e - 100.0).abs() < 1e-6, "e={e}");
        // Monotone in n.
        assert!(cardenas(2_000, 500) >= cardenas(1_000, 500));
    }

    #[test]
    fn coarser_cuboids_are_smaller() {
        let l = Lattice::paper_running_example();
        let est = SizeEstimator::new(1_000_000);
        let base = est.expected_rows(&l, &l.base());
        let apex = est.expected_rows(&l, &l.apex());
        assert!(base > apex);
        assert!((apex - 1.0).abs() < 1e-9);
        // Covering cuboids have no fewer expected rows.
        let cs = l.all_cuboids();
        for a in &cs {
            for b in &cs {
                if a.covers(b) {
                    assert!(
                        est.expected_rows(&l, a) >= est.expected_rows(&l, b) - 1e-6,
                        "{} < {}",
                        l.label(a),
                        l.label(b)
                    );
                }
            }
        }
    }

    #[test]
    fn sizes_and_fractions() {
        let l = Lattice::paper_running_example();
        let est = SizeEstimator::new(1_000_000);
        let gb = est.expected_gb(&l, &l.base());
        assert!(gb.value() > 0.0);
        let f = est.scan_fraction(&l, &l.apex());
        assert!(f > 0.0 && f < 1e-3);
        assert!(est.scan_fraction(&l, &l.base()) <= 1.0);
        let empty = SizeEstimator::new(0);
        assert_eq!(empty.scan_fraction(&l, &l.base()), 0.0);
    }
}
