//! Property-based invariants of the lattice substrate.

use mv_lattice::{candidates, cardenas, Cuboid, Dimension, Lattice, Level, SizeEstimator};
use proptest::prelude::*;

/// Strategy producing a random valid lattice with 1–3 dimensions of 2–4
/// levels each, prefix-chained columns and growing cardinalities.
fn arb_lattice() -> impl Strategy<Value = Lattice> {
    proptest::collection::vec((2usize..5, proptest::collection::vec(1u64..50, 3)), 1..4).prop_map(
        |dims| {
            let built: Vec<Dimension> = dims
                .into_iter()
                .enumerate()
                .map(|(d, (depth, mults))| {
                    let mut levels = vec![Dimension::all_level()];
                    let mut cols: Vec<String> = Vec::new();
                    let mut card = 1u64;
                    for l in 1..depth {
                        cols.push(format!("d{d}_c{l}"));
                        card = card.saturating_mul(mults[l - 1].max(2));
                        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                        levels.push(Level::new(format!("d{d}_l{l}"), &col_refs, card));
                    }
                    Dimension::new(format!("dim{d}"), levels).expect("constructed dims are valid")
                })
                .collect();
            Lattice::new(built).expect("non-empty")
        },
    )
}

/// Picks a random cuboid of `lattice` given a seed vector.
fn pick_cuboid(lattice: &Lattice, picks: &[u8]) -> Cuboid {
    let levels = lattice
        .dimensions()
        .iter()
        .zip(picks.iter().cycle())
        .map(|(d, p)| p % d.depth() as u8)
        .collect();
    Cuboid::new(levels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `covers` is a partial order: reflexive, antisymmetric, transitive.
    #[test]
    fn covers_is_partial_order(
        lattice in arb_lattice(),
        pa in proptest::collection::vec(0u8..8, 3),
        pb in proptest::collection::vec(0u8..8, 3),
        pc in proptest::collection::vec(0u8..8, 3),
    ) {
        let a = pick_cuboid(&lattice, &pa);
        let b = pick_cuboid(&lattice, &pb);
        let c = pick_cuboid(&lattice, &pc);
        // Reflexive.
        prop_assert!(a.covers(&a));
        // Antisymmetric.
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(&a, &b);
        }
        // Transitive.
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c));
        }
    }

    /// LCA is the least upper bound: covers both arguments, and any other
    /// cuboid covering both also covers the LCA... equivalently, is covered
    /// BY any common cover.
    #[test]
    fn lca_is_least_upper_bound(
        lattice in arb_lattice(),
        pa in proptest::collection::vec(0u8..8, 3),
        pb in proptest::collection::vec(0u8..8, 3),
        pw in proptest::collection::vec(0u8..8, 3),
    ) {
        let a = pick_cuboid(&lattice, &pa);
        let b = pick_cuboid(&lattice, &pb);
        let lca = a.lca(&b);
        prop_assert!(lca.covers(&a));
        prop_assert!(lca.covers(&b));
        let w = pick_cuboid(&lattice, &pw);
        if w.covers(&a) && w.covers(&b) {
            prop_assert!(w.covers(&lca));
        }
        // Meet is dual.
        let meet = a.meet(&b);
        prop_assert!(a.covers(&meet));
        prop_assert!(b.covers(&meet));
    }

    /// The base covers everything; everything covers the apex; key-column
    /// sets grow along the order.
    #[test]
    fn base_and_apex_are_extremes(
        lattice in arb_lattice(),
        p in proptest::collection::vec(0u8..8, 3),
    ) {
        let c = pick_cuboid(&lattice, &p);
        prop_assert!(lattice.base().covers(&c));
        prop_assert!(c.covers(&lattice.apex()));
        // Coverage implies column-set containment (the engine's
        // can_answer condition).
        let cols = lattice.key_columns(&c);
        let base_cols = lattice.key_columns(&lattice.base());
        for col in &cols {
            prop_assert!(base_cols.contains(col));
        }
    }

    /// cuboid_for_columns inverts key_columns on every cuboid.
    #[test]
    fn columns_roundtrip(lattice in arb_lattice()) {
        for c in lattice.all_cuboids() {
            let cols = lattice.key_columns(&c);
            prop_assert_eq!(lattice.cuboid_for_columns(&cols).unwrap(), c);
        }
    }

    /// Cardenas estimate never exceeds min(n, v) and is monotone in n.
    #[test]
    fn cardenas_is_bounded_and_monotone(n in 0u64..2_000_000, v in 1u64..2_000_000) {
        let e = cardenas(n, v);
        prop_assert!(e <= n as f64 + 1e-6);
        prop_assert!(e <= v as f64 + 1e-6);
        prop_assert!(e >= 0.0);
        let e2 = cardenas(n.saturating_add(1000), v);
        prop_assert!(e2 + 1e-9 >= e);
    }

    /// Estimated rows respect the lattice order: a finer cuboid never has
    /// fewer expected rows than one it covers.
    #[test]
    fn estimates_respect_order(
        lattice in arb_lattice(),
        rows in 1u64..5_000_000,
        pa in proptest::collection::vec(0u8..8, 3),
        pb in proptest::collection::vec(0u8..8, 3),
    ) {
        let est = SizeEstimator::new(rows);
        let a = pick_cuboid(&lattice, &pa);
        let b = pick_cuboid(&lattice, &pb);
        if a.covers(&b) {
            prop_assert!(
                est.expected_rows(&lattice, &a) >= est.expected_rows(&lattice, &b) - 1e-6
            );
        }
    }

    /// HRU greedy returns at most k distinct non-base cuboids and never
    /// increases workload cost.
    #[test]
    fn hru_greedy_invariants(
        lattice in arb_lattice(),
        rows in 100u64..1_000_000,
        k in 0usize..6,
        picks in proptest::collection::vec(proptest::collection::vec(0u8..8, 3), 1..6),
    ) {
        let est = SizeEstimator::new(rows);
        let queries: Vec<mv_lattice::LatticeQuery> = picks
            .iter()
            .enumerate()
            .map(|(i, p)| mv_lattice::LatticeQuery::once(
                format!("q{i}"),
                pick_cuboid(&lattice, p),
            ))
            .collect();
        let workload = mv_lattice::LatticeWorkload::new(&lattice, queries).unwrap();
        let sel = candidates::hru_greedy(&lattice, &est, &workload, k);
        prop_assert!(sel.len() <= k);
        let mut d = sel.clone();
        d.sort();
        d.dedup();
        prop_assert_eq!(d.len(), sel.len());
        prop_assert!(!sel.contains(&lattice.base()));
    }
}
