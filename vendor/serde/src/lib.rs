//! Offline stand-in for serde: marker traits plus no-op derives.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]`; nothing serializes at runtime yet. The traits are
//! empty markers and the derives expand to nothing, so swapping in real
//! serde later requires no call-site changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
