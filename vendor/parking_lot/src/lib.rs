//! Offline stand-in for `parking_lot`: `RwLock` and `Mutex` with the
//! non-poisoning API, backed by `std::sync`. A poisoned std lock (a
//! panicked holder) is unwrapped into the inner guard, matching
//! parking_lot's behavior of simply continuing.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
