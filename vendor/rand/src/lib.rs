//! Offline stand-in for the `rand` crate.
//!
//! Provides exactly the surface the workspace uses: a deterministic
//! seedable RNG (`rngs::StdRng`), `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float ranges. The generator
//! is splitmix64 — statistically fine for synthetic data generation,
//! not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling (stand-in for `rand::Rng`'s `random_range`).
pub trait RngExt {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer or float range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws a uniform sample using `rng`.
    fn sample<R: RngExt>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i64, u64, i32, u32, usize, u8, u16, i16);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngExt>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.random_range(1..=12i64);
            assert_eq!(x, b.random_range(1..=12i64));
            assert!((1..=12).contains(&x));
            let u = a.random_range(0..5usize);
            assert_eq!(u, b.random_range(0..5usize));
            assert!(u < 5);
            let f = a.random_range(0.0..3.5f64);
            assert_eq!(f, b.random_range(0.0..3.5f64));
            assert!((0.0..3.5).contains(&f));
        }
    }
}
