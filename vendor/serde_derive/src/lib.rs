//! No-op derive macros for the offline `serde` stand-in.
//!
//! Nothing in the workspace serializes yet — the derives exist so type
//! definitions can keep their `#[derive(Serialize, Deserialize)]`
//! annotations (and stay drop-in compatible with real serde). Each derive
//! expands to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
