//! Offline stand-in for `criterion`: a wall-clock micro-benchmark
//! harness with the same macro/builder surface the in-tree benches use.
//!
//! Each benchmark warms up for `warm_up_time`, then runs timed batches
//! until `measurement_time` elapses (at least `sample_size` batches),
//! and prints the mean and best per-iteration time. No statistics
//! beyond that — the numbers are for relative comparison, not
//! publication.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the minimum number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Parses CLI options. The stand-in accepts and ignores cargo-bench's
    /// arguments (`--bench`, filters) — except `--test`, which (like real
    /// criterion) switches to smoke mode: every benchmark body runs once
    /// to prove it still compiles and executes, with no timing loop. CI
    /// runs the benches this way so bench bit-rot fails the build.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = Criterion {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        BenchmarkGroup {
            _criterion: self,
            config,
            name: name.into(),
        }
    }
}

/// A named benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (the group name supplies the function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix, with optional
/// per-group config overrides.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    config: Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the minimum sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id` within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&self.config, &label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a parameterless closure within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&self.config, &label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs the measured body.
pub struct Bencher {
    mode: Mode,
    iters_per_batch: u64,
    elapsed: Duration,
}

enum Mode {
    Calibrate,
    Measure,
    Smoke,
}

impl Bencher {
    /// Runs `body` repeatedly, timing it.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(body());
            }
            Mode::Calibrate => {
                // Find a batch size that takes ≳1 ms so timer overhead
                // stays negligible.
                let mut iters = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(body());
                    }
                    let took = start.elapsed();
                    if took >= Duration::from_millis(1) || iters >= 1 << 24 {
                        self.iters_per_batch = iters;
                        self.elapsed = took;
                        return;
                    }
                    iters *= 2;
                }
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_batch {
                    std::hint::black_box(body());
                }
                self.elapsed = start.elapsed();
            }
        }
    }
}

fn run_one(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if config.test_mode {
        // Smoke mode (`cargo bench -- --test`): execute each body once,
        // skip warm-up and timing entirely.
        let mut b = Bencher {
            mode: Mode::Smoke,
            iters_per_batch: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {label:<56} smoke ok");
        return;
    }
    // Calibration (doubles as warm-up start).
    let mut b = Bencher {
        mode: Mode::Calibrate,
        iters_per_batch: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let iters = b.iters_per_batch;

    // Warm-up.
    let warm_start = Instant::now();
    while warm_start.elapsed() < config.warm_up {
        let mut w = Bencher {
            mode: Mode::Measure,
            iters_per_batch: iters,
            elapsed: Duration::ZERO,
        };
        f(&mut w);
    }

    // Timed samples.
    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    let meas_start = Instant::now();
    while samples.len() < config.sample_size || meas_start.elapsed() < config.measurement {
        let mut m = Bencher {
            mode: Mode::Measure,
            iters_per_batch: iters,
            elapsed: Duration::ZERO,
        };
        f(&mut m);
        samples.push(m.elapsed.as_secs_f64() / iters as f64);
        if samples.len() >= config.sample_size * 8 {
            break;
        }
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let best = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "bench {label:<56} mean {:>12}  best {:>12}  ({} samples x {} iters)",
        format_time(mean),
        format_time(best),
        samples.len(),
        iters
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group-running function from a config expression and a list
/// of target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            // Like real criterion: the group entry point picks up CLI
            // options (notably `--test` smoke mode) on top of the
            // caller's config.
            let mut criterion: $crate::Criterion = $crate::Criterion::configure_from_args($config);
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        c.bench_function("smoke/add", |b| b.iter(|| 1u64 + 1));
        let mut group = c.benchmark_group("smoke");
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| b.iter(|| x * x));
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7u64 - 1));
        group.finish();
    }
}
