//! Offline stand-in for `proptest`: deterministic random property
//! testing covering the subset of the API this workspace uses.
//!
//! Supported: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!` / `prop_assert_eq!`,
//! range strategies over ints and floats, tuple strategies (arity ≤ 8),
//! `collection::vec`, `sample::subsequence`, `bool::ANY`, `Just`, and
//! `.prop_map`. Unsupported (not used in-tree): shrinking, persistence,
//! `prop_oneof`, recursive strategies.
//!
//! Failures report the case's generated inputs via the normal panic
//! message; with no shrinking the failing values are whatever the
//! deterministic generator produced, reproducible on every run.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state used by strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `label`
    /// (typically the test function name), so every run explores the
    /// same cases.
    pub fn deterministic(label: &str) -> TestRng {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

/// Test-runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator (no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i64, u64, i32, u32, usize, u8, u16, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Length specification for [`collection::vec`]: a fixed `usize` or a
/// `usize` range.
pub trait LenSpec {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl LenSpec for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl LenSpec for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl LenSpec for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

/// Collection strategies.
pub mod collection {
    use super::{LenSpec, Strategy, TestRng};

    /// Strategy yielding vectors of `element`-generated values.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `len` and whose elements come from `element`.
    pub fn vec<S: Strategy, L: LenSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: LenSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies over fixed pools.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy yielding order-preserving subsequences of a pool.
    pub struct Subsequence<T> {
        pool: Vec<T>,
        len: std::ops::Range<usize>,
    }

    /// `proptest::sample::subsequence`: picks a subsequence of `pool`
    /// (order preserved) whose length is drawn from `len`.
    pub fn subsequence<T: Clone, L: Into<LenRange>>(pool: Vec<T>, len: L) -> Subsequence<T> {
        Subsequence {
            pool,
            len: len.into().0,
        }
    }

    /// Adapter turning fixed lengths / ranges into a half-open range.
    pub struct LenRange(pub std::ops::Range<usize>);

    impl From<usize> for LenRange {
        fn from(n: usize) -> Self {
            LenRange(n..n + 1)
        }
    }

    impl From<std::ops::Range<usize>> for LenRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            LenRange(r)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for LenRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            LenRange(*r.start()..*r.end() + 1)
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let max_len = self.len.end.saturating_sub(1).min(self.pool.len());
            let min_len = self.len.start.min(max_len);
            let want = min_len + rng.below((max_len - min_len + 1) as u64) as usize;
            // Reservoir-style pick of `want` distinct indices, then sort to
            // preserve pool order.
            let mut picked: Vec<usize> = Vec::with_capacity(want);
            for i in 0..self.pool.len() {
                let remaining_slots = want - picked.len();
                let remaining_items = self.pool.len() - i;
                if remaining_slots == 0 {
                    break;
                }
                if rng.below(remaining_items as u64) < remaining_slots as u64 {
                    picked.push(i);
                }
            }
            picked.iter().map(|&i| self.pool[i].clone()).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// `prop::bool::ANY`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-import surface tests use: traits, config, macros, and the
/// crate itself under the conventional `prop` alias.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Property assertion: like `assert!` (no shrink-and-retry here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion: like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest!` block: one or more `#[test]` functions whose
/// arguments are drawn from strategies for each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    fn arb_pair() -> impl Strategy<Value = (i64, f64)> {
        (0i64..10, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3i64..9, y in 0.5f64..2.5, flag in prop::bool::ANY) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            // Consume the bool so the strategy is exercised.
            prop_assert_eq!(flag as u8 <= 1, true);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..8, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 8));
        }

        #[test]
        fn subsequences_preserve_order(s in prop::sample::subsequence(vec![1, 2, 3, 4, 5], 0..4)) {
            prop_assert!(s.len() < 4);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn mapped(p in arb_pair()) {
            prop_assert_eq!(p.0 % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
