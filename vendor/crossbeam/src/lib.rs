//! Offline stand-in for `crossbeam`: the `thread::scope` API backed by
//! `std::thread::scope` (stable since 1.63). Spawn closures receive a
//! placeholder `()` argument where crossbeam passes the scope; all
//! in-tree call sites ignore it (`|_| ...`).

/// Scoped threads.
pub mod thread {
    /// A spawn handle scoped to a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread, returning its result or its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument is a placeholder
        /// for crossbeam's nested-scope handle and is always `()`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; all
    /// spawned threads are joined before returning. Unjoined panics
    /// propagate (std semantics) rather than surfacing as `Err`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_sum() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
