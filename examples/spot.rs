//! A year of SSB dashboards on a spot market, priced against a
//! reservation.
//!
//! The horizon example re-bills a measured workload over twelve months
//! of *fixed* prices. This walkthrough drops the same setup into a
//! moving market: compute clears on a discounted, mean-reverting spot
//! process (average ≈45% of on-demand, hard swings, interruption risk
//! when the market spikes past the bid), storage rates decline
//! secularly, and a compute price cut is announced for mid-year. The
//! advisor measures the candidate pool **once**, then
//! `Advisor::solve_market` solves the transition-aware chain across 24
//! sampled price paths — one warm-started evaluator per path,
//! re-priced and re-risked at every epoch boundary through
//! `retarget`/`update_charge` — and reports the Monte-Carlo envelope:
//! per-epoch cost quantiles, plan stability across paths, and whether
//! riding the spot market beat reserving capacity.
//!
//! Run with: `cargo run --example spot`

use mvcloud::market::{
    AnnouncedCut, MarketConfig, MarketScenario, PriceProcess, SpotMarket, StorageDecay,
};
use mvcloud::pricing::CommitmentPlan;
use mvcloud::report::render_table;
use mvcloud::{ssb_domain, Advisor, AdvisorConfig, CandidateStrategy, Scenario};

fn main() {
    println!("== 12-epoch spot-vs-reserved SSB market ==\n");
    let domain = ssb_domain(8_000, 30.0, 7);
    let advisor = Advisor::build(
        domain,
        AdvisorConfig {
            candidates: CandidateStrategy::HruGreedy(8),
            ..AdvisorConfig::default()
        },
    )
    .expect("advisor builds");
    println!(
        "measured {} candidate views once; sampling 24 price paths over 12 months\n",
        advisor.problem().len()
    );

    let market = MarketScenario::constant(12, 2012)
        // Spot compute: deep average discount, violent swings.
        .with(PriceProcess::Spot(SpotMarket::discounted(0.45, 0.35)))
        // The provider announces a 20% compute cut effective in July.
        .with(PriceProcess::Cut(AnnouncedCut::compute(6, 0.8)))
        // Storage keeps getting cheaper, ~1.5%/month down to a floor.
        .with(PriceProcess::StorageDecay(StorageDecay::new(0.015, 0.6)));
    let config = MarketConfig {
        market,
        paths: 24,
        commitment: Some(CommitmentPlan::aws_small_1yr()),
        ..MarketConfig::default()
    };
    let scenario = Scenario::tradeoff_normalized(0.5);
    let report = advisor.solve_market(scenario, &config).expect("solves");

    let rows: Vec<Vec<String>> = report
        .epochs
        .iter()
        .map(|e| {
            vec![
                e.epoch.to_string(),
                format!("{:.2}", e.compute_factor.mean),
                format!("{:.0}%", e.interruption.mean * 100.0),
                format!("${:.2}", e.charged_cost.p10),
                format!("${:.2}", e.charged_cost.median),
                format!("${:.2}", e.charged_cost.p90),
                format!("{}/{}", e.distinct_plans, report.paths.len()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["month", "spot", "int", "p10", "median", "p90", "plans"],
            &rows,
        )
    );

    println!(
        "\nyear total: ${:.2} (p10 ${:.2} — p90 ${:.2} across {} paths)",
        report.total_cost.median,
        report.total_cost.p10,
        report.total_cost.p90,
        report.paths.len()
    );
    println!(
        "plan stability: {:.0}% of paths agree on the modal selection per month",
        report.plan_stability * 100.0
    );
    let switches: usize = report.paths.iter().map(|p| p.switches).sum();
    let interruptions: usize = report.paths.iter().map(|p| p.interruptions).sum();
    println!(
        "churn: {:.1} selection switches and {:.1} sampled interruptions per path",
        switches as f64 / report.paths.len() as f64,
        interruptions as f64 / report.paths.len() as f64,
    );

    let cmp = report.commitment.expect("plan supplied");
    println!("\n-- reserved vs spot ({}) --", cmp.plan);
    println!(
        "compute on the spot market: median ${:.2} (p10 ${:.2} — p90 ${:.2})",
        cmp.spot_compute.median, cmp.spot_compute.p10, cmp.spot_compute.p90
    );
    println!(
        "same billed hours reserved: median ${:.2}",
        cmp.reserved.median
    );
    println!(
        "verdict: the reservation wins on {:.0}% of paths (median saving ${:.2})",
        cmp.reserved_wins_share * 100.0,
        cmp.saving.median
    );
    if cmp.reserved_wins_share < 0.5 {
        println!("at this discount depth, riding the spot market is the better bet.");
    } else {
        println!("the spot swings are wild enough that locking in capacity pays.");
    }
}
