//! Closing the loop: does the advisor's bill survive contact with the
//! engine?
//!
//! Everything else in this repo *predicts* — the advisor meters the
//! workload once, prices it through the paper's cost model, and a
//! solver picks views. This walkthrough **runs** the chosen plan: the
//! horizon plan's view transitions are replayed through the columnar
//! engine epoch by epoch (materialize, refresh, drop, answer queries),
//! every byte is metered, and the metered work is billed through the
//! same provider ledger. From the metered `(gigabytes, hours)` samples
//! the loop then *fits* the throughput law by least squares — holding
//! out the final epoch — and scores three predictors against the
//! metered bill:
//!
//! * **planned** — the horizon solve's own per-epoch prediction;
//! * **fitted** — the metered work re-billed under the fitted law;
//! * **synthetic** — the same work under a deliberately mis-specified
//!   "spec-sheet" prior (4× optimistic scan rate, zero job overhead).
//!
//! The punchline the tests assert: the fitted parameters generalize to
//! the held-out epoch far better than the synthetic prior.
//!
//! Run with: `cargo run --example calibrate`

use mvcloud::lattice::WorkloadEvolution;
use mvcloud::units::Gb;
use mvcloud::{sales_domain, Advisor, AdvisorConfig, CalibrationConfig, Scenario};

fn main() {
    println!("== engine↔advisor calibration loop ==\n");

    // The paper's running example at its stated 500 GB cloud scale —
    // large enough that compute-hour rounding cannot mask throughput
    // differences (at 10 GB every predictor rounds to the same bill).
    let domain = sales_domain(2_000, 5, 2.0, 42);
    let advisor = Advisor::build(
        domain,
        AdvisorConfig {
            simulated_dataset: Gb::new(500.0),
            ..AdvisorConfig::default()
        },
    )
    .expect("advisor builds");

    let config = CalibrationConfig {
        epochs: 4,
        evolution: WorkloadEvolution::seasonal(4, 0.5),
        ..CalibrationConfig::default()
    };
    let report = advisor
        .calibrate(Scenario::tradeoff_normalized(0.5), &config)
        .expect("calibration runs");

    println!(
        "replayed {} epochs through the engine ({} metered samples; epoch {} held out)\n",
        report.epochs.len(),
        report.samples,
        report.holdout_epoch
    );
    println!("{}", report.timeline_csv());

    let fitted = report.fitted_throughput();
    println!(
        "\nfitted throughput law: {:.2} GB/h/unit, {:.3} h job overhead",
        fitted.scan_gb_per_hour_per_unit,
        fitted.job_overhead.value()
    );
    println!(
        "synthetic prior:       {:.2} GB/h/unit, {:.3} h job overhead",
        config.synthetic.scan_gb_per_hour_per_unit,
        config.synthetic.job_overhead.value()
    );
    println!(
        "\nheld-out epoch {}: fitted rel error {:.4}  vs  synthetic {:.4}",
        report.holdout_epoch, report.holdout_fitted_rel_error, report.holdout_synthetic_rel_error
    );
    println!(
        "mean across epochs: planned {:.4}, fitted {:.4}",
        report.mean_planned_rel_error, report.mean_fitted_rel_error
    );
    println!(
        "\nthe fitted law can now seed a re-advising pass: \
         AdvisorConfig {{ throughput: fitted, .. }}"
    );
}
