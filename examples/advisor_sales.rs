//! The supply-chain sales scenario from the paper's introduction: business
//! users analyse profit per day/month/year × department/region/country,
//! under each of the paper's three decision regimes.
//!
//! Shows how the *same* workload gets a different materialization set
//! depending on whether the user is budget-bound (MV1), latency-bound
//! (MV2), or balancing both (MV3) — the paper's Figure 2–4 story.
//!
//! Run with: `cargo run --example advisor_sales`

use mvcloud::report::summarize;
use mvcloud::units::{Hours, Money, Months};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, CandidateStrategy, Scenario, SolverKind};

fn main() {
    // Ten roll-up queries over 20k generated sales rows standing in for the
    // paper's 10 GB evaluation dataset; dashboards refresh 30×/month.
    let domain = sales_domain(20_000, 10, 30.0, 7);
    let advisor = Advisor::build(
        domain,
        AdvisorConfig {
            months: Months::new(1.0),
            candidates: CandidateStrategy::FullLattice,
            ..AdvisorConfig::default()
        },
    )
    .unwrap();
    let names: Vec<String> = advisor
        .candidates()
        .iter()
        .map(|c| c.label.clone())
        .collect();
    let baseline = advisor.problem().baseline();
    println!(
        "workload: 10 queries x30/month | no views: {} and {}\n",
        baseline.time,
        baseline.cost()
    );

    println!("--- MV1: analyst with a hard budget ---");
    for extra_cents in [30i64, 100, 400] {
        let budget = baseline.cost() + Money::from_cents(extra_cents);
        let o = advisor.solve(Scenario::budget(budget), SolverKind::PaperKnapsack);
        println!("budget {budget}:");
        println!("{}\n", summarize(&o, &names));
    }

    println!("--- MV2: dashboard with a latency target ---");
    for factor in [0.5, 0.2, 0.05] {
        let limit = Hours::new(baseline.time.value() * factor);
        let o = advisor.solve(Scenario::time_limit(limit), SolverKind::PaperKnapsack);
        println!("time limit {limit} ({:.0}% of baseline):", factor * 100.0);
        println!("{}\n", summarize(&o, &names));
    }

    println!("--- MV3: weighted tradeoff sweep ---");
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let o = advisor.solve(
            Scenario::tradeoff_normalized(alpha),
            SolverKind::BranchAndBound,
        );
        println!(
            "alpha={alpha:.1}: {} views, time {}, cost {}, objective {:.4}",
            o.evaluation.num_selected(),
            o.evaluation.time,
            o.evaluation.cost(),
            o.objective(),
        );
    }
}
