//! Multi-provider comparison — the paper's first future-work item
//! ("include pricing models from several CSPs").
//!
//! The same dataset, workload and candidate views are priced under four
//! providers with different cost shapes; the optimal materialization set
//! shifts with the pricing: cheap-storage providers favour aggressive
//! materialization, dear-compute providers favour it even more, and the
//! selected views differ.
//!
//! Run with: `cargo run --example multi_cloud`

use mvcloud::pricing::presets;
use mvcloud::report::{pct, render_table};
use mvcloud::units::Months;
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};

fn main() {
    let policies = [
        presets::aws_2012(),
        presets::cumulus(),
        presets::stratus(),
        presets::flat_rate(),
    ];
    // Each provider names its instances differently; pick the ~1-compute-
    // unit configuration from each catalog.
    let mut rows = Vec::new();
    for pricing in policies {
        let instance = pricing
            .compute
            .catalog
            .cheapest_with_units(1.0)
            .expect("every preset has a 1-unit instance")
            .name
            .clone();
        let domain = sales_domain(10_000, 10, 30.0, 42);
        let advisor = Advisor::build(
            domain,
            AdvisorConfig {
                pricing: pricing.clone(),
                instance,
                nb_instances: 2,
                months: Months::new(1.0),
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        let outcome = advisor.solve(
            Scenario::tradeoff_normalized(0.5),
            SolverKind::BranchAndBound,
        );
        let names: Vec<String> = advisor
            .candidates()
            .iter()
            .map(|c| c.label.clone())
            .collect();
        rows.push(vec![
            pricing.name.clone(),
            outcome.baseline.cost().to_string(),
            outcome.evaluation.cost().to_string(),
            pct(outcome.cost_improvement()),
            outcome.evaluation.num_selected().to_string(),
            outcome.selected_names(&names).join(", "),
        ]);
    }
    println!("== Same workload, four providers, MV3 alpha=0.5 ==\n");
    println!(
        "{}",
        render_table(
            &[
                "provider",
                "cost (no views)",
                "cost (with views)",
                "saved",
                "#views",
                "selected"
            ],
            &rows
        )
    );
    println!("\nThe optimal set is provider-dependent: pricing shape, not just");
    println!("workload shape, decides what to materialize — the paper's thesis.");
}
