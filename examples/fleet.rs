//! A year of SSB dashboards on a *hedged* fleet: latency-critical
//! serving on reserved capacity, rebuildable aggregates riding the
//! spot market — with interruptions arriving in correlated crunches.
//!
//! The spot walkthrough (`examples/spot.rs`) prices one homogeneous
//! fleet against the market and asks "reserve or ride?". This one
//! makes the hedge a per-view decision: `Advisor::solve_fleet` splits
//! capacity into a reserved pool (the shared dashboard serving, at
//! contract rates, never reclaimed) and a spot pool (deep discount,
//! priced per minute so the discount actually reaches the invoice, but
//! bursty reclaims — a two-state calm/crunch regime where crunch
//! months cluster), and searches each view's placement jointly with
//! the selection itself. The report shows the hedge ratio the search
//! settles on per month and prices the hedged plan against both pure
//! fleets on the same sampled price paths.
//!
//! Run with: `cargo run --example fleet`

use mvcloud::fleet::FleetConfig;
use mvcloud::market::{CorrelatedHazard, MarketScenario, PriceProcess, SpotMarket};
use mvcloud::pricing::presets;
use mvcloud::report::render_table;
use mvcloud::{ssb_domain, Advisor, AdvisorConfig, CandidateStrategy, Scenario};

fn main() {
    println!("== 12-epoch hedged mixed-fleet SSB market ==\n");
    let domain = ssb_domain(8_000, 30.0, 7);
    let advisor = Advisor::build(
        domain,
        AdvisorConfig {
            // Per-minute billing (Cumulus): pool-rate differentials and
            // interruption premiums survive the rounding rule.
            pricing: presets::cumulus(),
            instance: "c.std".to_string(),
            candidates: CandidateStrategy::HruGreedy(8),
            // A heavier simulated warehouse than the paper's 10 GB:
            // view builds and refreshes are then hours, not minutes,
            // so pool placement genuinely moves the bill.
            simulated_dataset: mvcloud::units::Gb::new(500.0),
            maintenance_delta_fraction: 0.05,
            ..AdvisorConfig::default()
        },
    )
    .expect("advisor builds");
    println!(
        "measured {} candidate views once; sampling 24 price paths over 12 months\n",
        advisor.problem().len()
    );

    let market = MarketScenario::constant(12, 2026)
        // Spot clears around half of on-demand with hard swings...
        .with(PriceProcess::Spot(SpotMarket::discounted(0.5, 0.35)))
        // ...and capacity crunches cover ~30% of months, in runs
        // (persistence 0.85): a crunch month interrupts builds with
        // probability 0.85 (an expected 6.7 attempts per surviving
        // build) and doubles the clearing price — spot work is then
        // several times dearer than reserved, until the crunch lifts.
        .with(PriceProcess::Correlated(
            CorrelatedHazard::bursty(0.3, 0.85, 0.85).with_crunch_compute(2.0),
        ));
    let config = FleetConfig {
        market,
        paths: 24,
        ..FleetConfig::default()
    };
    let scenario = Scenario::tradeoff_normalized(0.5);
    let report = advisor.solve_fleet(scenario, &config).expect("solves");

    let rows: Vec<Vec<String>> = report
        .epochs
        .iter()
        .map(|e| {
            vec![
                e.epoch.to_string(),
                format!("{:.2}", e.compute_factor.mean),
                format!("{:.0}%", e.interruption.mean * 100.0),
                format!("{:.0}%", e.hedge_ratio.median * 100.0),
                format!("${:.2}", e.charged_cost.p10),
                format!("${:.2}", e.charged_cost.median),
                format!("${:.2}", e.charged_cost.p90),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["month", "spot", "int", "hedge", "p10", "median", "p90"],
            &rows,
        )
    );

    println!(
        "\nyear total: ${:.2} (p10 ${:.2} — p90 ${:.2} across {} paths)",
        report.total_cost.median,
        report.total_cost.p10,
        report.total_cost.p90,
        report.paths.len()
    );
    println!(
        "hedge ratio: a median {:.0}% of the selected views ride the spot pool",
        report.hedge_ratio.median * 100.0
    );
    let moves: usize = report.paths.iter().map(|p| p.moves).sum();
    let interruptions: usize = report.paths.iter().map(|p| p.interruptions).sum();
    println!(
        "churn: {:.1} placement moves and {:.1} sampled interruptions per path",
        moves as f64 / report.paths.len() as f64,
        interruptions as f64 / report.paths.len() as f64,
    );

    let cmp = report.comparison.expect("comparison on by default");
    println!("\n-- hedged vs pure fleets (same sampled paths) --");
    println!(
        "hedged:        median ${:.2} (p10 ${:.2} — p90 ${:.2})",
        cmp.hedged.median, cmp.hedged.p10, cmp.hedged.p90
    );
    println!(
        "pure spot:     median ${:.2} (p10 ${:.2} — p90 ${:.2})",
        cmp.pure_spot.median, cmp.pure_spot.p10, cmp.pure_spot.p90
    );
    println!("pure reserved: median ${:.2}", cmp.pure_reserved.median);
    println!(
        "vs staying all-reserved, the per-view hedge saves ${:.2} at the median;",
        cmp.pure_reserved.median - cmp.hedged.median
    );
    println!(
        "pure spot also moves the *dashboard serving* onto the discounted sheet \
         (${:.2} cheaper at the median), but spreads ${:.2} of p10–p90 price risk \
         across the year vs the hedge's ${:.2}.",
        cmp.hedged.median - cmp.pure_spot.median,
        cmp.pure_spot.p90 - cmp.pure_spot.p10,
        cmp.hedged.p90 - cmp.hedged.p10,
    );
}
