//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces Section 2's arithmetic — the $62-vs-$64.60 introduction, the
//! EC2/S3/bandwidth charges — then runs the real pipeline on generated
//! sales data: measure, select under a budget, materialize, and reconcile
//! the predicted bill with a simulated invoice.
//!
//! Run with: `cargo run --example quickstart`

use mvcloud::cost::{CloudCostModel, CostContext, QueryCharge, ViewCharge};
use mvcloud::pricing::presets;
use mvcloud::units::{Gb, Hours, Money, Months};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};

fn main() {
    // ------------------------------------------------------------------
    // Part 1 — the paper's numbers, from the cost models alone.
    // ------------------------------------------------------------------
    println!("== The running example (paper Section 2) ==\n");
    let pricing = presets::aws_2012();
    let small = pricing.compute.instance("small").unwrap().clone();
    let model = CloudCostModel::new(CostContext {
        pricing,
        instance: small,
        nb_instances: 2,
        months: Months::new(12.0),
        dataset_size: Gb::new(500.0),
        inserts: vec![],
        workload: vec![QueryCharge::new("Q", Gb::new(10.0), Hours::new(50.0))],
    });
    let without = model.without_views();
    println!("without views:\n{without}\n");

    // V1 = "sales per month and country".
    let v1 = ViewCharge::new("V1", Gb::new(50.0), Hours::new(1.0), Hours::new(5.0), 1)
        .answers(0, Hours::new(40.0));
    let with = model.with_views(&[v1], &mvcloud::cost::SelectionSet::full(1));
    println!("with V1 materialized:\n{with}\n");
    println!(
        "V1 saves {} of compute but adds {} of storage per year.\n",
        without.compute() - with.compute(),
        with.storage - without.storage,
    );

    // ------------------------------------------------------------------
    // Part 2 — the real pipeline on generated data.
    // ------------------------------------------------------------------
    println!("== The advisor pipeline on generated sales data ==\n");
    let domain = sales_domain(10_000, 5, 1.0, 42);
    let advisor = Advisor::build(domain, AdvisorConfig::default()).unwrap();

    let budget = advisor.problem().baseline().cost() + Money::from_dollars(1);
    let outcome = advisor.solve(Scenario::budget(budget), SolverKind::PaperKnapsack);
    let names: Vec<String> = advisor
        .candidates()
        .iter()
        .map(|c| c.label.clone())
        .collect();
    println!("{}\n", mvcloud::report::summarize(&outcome, &names));

    // Materialize the chosen views and serve a query through them.
    let catalog = advisor.materialize_selection(&outcome).unwrap();
    let q = &advisor.queries()[0];
    let (result, _, used) = catalog.execute(q, &advisor.domain().base).unwrap();
    println!(
        "query {:?} answered from {} -> {} rows",
        q.name,
        used.as_deref().unwrap_or("the base table"),
        result.num_rows()
    );

    // Reconcile the prediction with a simulated provider invoice.
    let invoice = advisor
        .usage_ledger(&outcome)
        .invoice(&advisor.config().pricing)
        .unwrap();
    println!("\n{invoice}");
    assert_eq!(invoice.total(), outcome.evaluation.cost());
    println!("\ninvoice total matches the cost model's prediction exactly.");
}
