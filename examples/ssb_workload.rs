//! Star-Schema-Benchmark-like workload — the paper's future-work item on
//! validating with "a full-fledged data warehouse benchmark".
//!
//! A 64-cuboid lattice (date × customer × part) and the 13-query flight
//! workload. The full lattice is too big for exhaustive search, so this
//! example also demonstrates the bounded candidate strategies (HRU greedy
//! and workload closure) with the scalable solvers.
//!
//! Run with: `cargo run --example ssb_workload`

use mvcloud::report::{pct, render_table};
use mvcloud::units::{Money, Months};
use mvcloud::{ssb_domain, Advisor, AdvisorConfig, CandidateStrategy, Scenario, SolverKind};

fn main() {
    println!("== SSB-like domain: 13 queries over date x customer x part ==\n");
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("workload closure", CandidateStrategy::WorkloadClosure),
        ("HRU greedy k=8", CandidateStrategy::HruGreedy(8)),
        ("HRU greedy k=16", CandidateStrategy::HruGreedy(16)),
    ] {
        let domain = ssb_domain(20_000, 30.0, 7);
        let advisor = Advisor::build(
            domain,
            AdvisorConfig {
                months: Months::new(1.0),
                candidates: strategy,
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        let budget = advisor.problem().baseline().cost() + Money::from_dollars(1);
        let outcome = advisor.solve(Scenario::budget(budget), SolverKind::Greedy);
        rows.push(vec![
            label.to_string(),
            advisor.problem().len().to_string(),
            outcome.evaluation.num_selected().to_string(),
            outcome.baseline.time.to_string(),
            outcome.evaluation.time.to_string(),
            pct(outcome.time_improvement()),
            outcome.feasible().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "candidates",
                "#candidates",
                "#selected",
                "time before",
                "time after",
                "IP rate",
                "feasible"
            ],
            &rows
        )
    );
    println!("\nEven on the larger lattice the candidate generators keep the");
    println!("problem small enough for interactive selection, and views remain");
    println!("strongly worthwhile on a star-schema workload.");
}
