//! A year of seasonal SSB dashboards, re-optimized every month.
//!
//! The paper prices one billing period with a fixed workload; this
//! example walks its own "queries by day, maintenance by night" setup
//! to the natural conclusion: a 12-epoch billing horizon over the
//! SSB-like domain, where the 13 flight queries' frequencies swing
//! seasonally (amplitude 0.8, one full cycle per year). The advisor
//! measures the candidate pool **once**, then the transition-aware
//! epoch chain re-solves each month warm-started from the previous
//! month's state: views kept across a boundary pay maintenance only,
//! new views pay materialization, dropped views forfeit theirs.
//!
//! The walkthrough prints the monthly timeline (selections and
//! transitions), compares the chain against the transition-blind
//! "re-run the single-period advisor every month" policy, and — now
//! that there are enough compute hours for the upfront to amortize —
//! prices the year's compute against a reserved-instance plan.
//!
//! Run with: `cargo run --example horizon`

use mvcloud::lattice::WorkloadEvolution;
use mvcloud::pricing::CommitmentPlan;
use mvcloud::report::render_table;
use mvcloud::{ssb_domain, Advisor, AdvisorConfig, CandidateStrategy, HorizonConfig, Scenario};

fn main() {
    println!("== 12-epoch seasonal SSB horizon ==\n");
    let domain = ssb_domain(8_000, 30.0, 7);
    let advisor = Advisor::build(
        domain,
        AdvisorConfig {
            candidates: CandidateStrategy::HruGreedy(8),
            ..AdvisorConfig::default()
        },
    )
    .expect("advisor builds");
    println!(
        "measured {} candidate views once; re-billing them over 12 months\n",
        advisor.problem().len()
    );

    let scenario = Scenario::tradeoff_normalized(0.5);
    let horizon = HorizonConfig {
        epochs: 12,
        evolution: WorkloadEvolution::seasonal(12, 0.8),
        commitment: Some(CommitmentPlan::aws_small_1yr()),
    };
    let report = advisor.solve_horizon(scenario, &horizon).expect("solves");

    let rows: Vec<Vec<String>> = report
        .epochs
        .iter()
        .map(|e| {
            vec![
                e.epoch.to_string(),
                e.selected.len().to_string(),
                format!(
                    "+{} / ={} / -{}",
                    e.added.len(),
                    e.kept.len(),
                    e.dropped.len()
                ),
                format!("{:.3} h", e.time_hours),
                e.charged_cost.to_string(),
                e.full_price_cost.to_string(),
                e.cumulative_cost.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "month",
                "views",
                "add/keep/drop",
                "time",
                "charged",
                "full price",
                "cumulative"
            ],
            &rows
        )
    );

    let myopic = advisor
        .solve_horizon_myopic(scenario, &horizon)
        .expect("myopic solves");
    println!(
        "\nhorizon totals:  transition-aware chain {}  vs  myopic re-solve {}",
        report.total_cost, myopic.total_cost
    );
    println!(
        "the chain re-materializes {} view-builds over the year; myopic {}",
        report.epochs.iter().map(|e| e.added.len()).sum::<usize>(),
        myopic.epochs.iter().map(|e| e.added.len()).sum::<usize>()
    );

    if let Some(c) = &report.commitment {
        println!(
            "\ncommitment check ({}): {:.0} billed instance-hours",
            c.plan,
            c.billed_instance_hours.value()
        );
        println!(
            "  on-demand compute {}   reserved {}",
            c.on_demand, c.reserved
        );
        println!(
            "  {}",
            if c.reserved_wins() {
                format!("reserving saves {} over the year", c.saving())
            } else {
                format!(
                    "on-demand stays cheaper by {} — the dashboards are too light \
                     to amortize the upfront",
                    -c.saving()
                )
            }
        );
    }
}
