//! Elastic provisioning sweep — the paper's future-work item on "variable
//! resources" and its introduction's scale-up-vs-materialize question.
//!
//! For 1–16 rented instances, compares three strategies on the same
//! workload: scale out with no views, materialize with no extra instances,
//! and the advisor's combined optimum. Materialization beats raw
//! scale-out on cost at every fleet size — "cloud view materialization is
//! always desirable".
//!
//! Run with: `cargo run --example elasticity`

use mvcloud::report::render_table;
use mvcloud::units::Months;
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};

fn main() {
    let mut rows = Vec::new();
    for nb in [1u32, 2, 4, 8, 16] {
        let domain = sales_domain(10_000, 10, 30.0, 42);
        let advisor = Advisor::build(
            domain,
            AdvisorConfig {
                nb_instances: nb,
                months: Months::new(1.0),
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        let baseline = advisor.problem().baseline();
        let optimum = advisor.solve(
            Scenario::tradeoff_normalized(0.5),
            SolverKind::BranchAndBound,
        );
        rows.push(vec![
            nb.to_string(),
            baseline.time.to_string(),
            baseline.cost().to_string(),
            optimum.evaluation.time.to_string(),
            optimum.evaluation.cost().to_string(),
            optimum.evaluation.num_selected().to_string(),
        ]);
    }
    println!("== Scale-out vs materialization (10 queries x30/month) ==\n");
    println!(
        "{}",
        render_table(
            &[
                "instances",
                "time (no views)",
                "cost (no views)",
                "time (advisor)",
                "cost (advisor)",
                "#views"
            ],
            &rows
        )
    );
    println!("\nScaling out buys time linearly but the bill stays flat-to-rising;");
    println!("materialized views cut both. Bigger fleets mainly shrink the");
    println!("materialization window, not the steady-state bill.");

    // Reserved capacity (extension): does committing to a 1-year small-
    // instance reservation pay off for this workload's hours?
    use mvcloud::pricing::{presets, CommitmentPlan};
    use mvcloud::units::Hours;
    let plan = CommitmentPlan::aws_small_1yr();
    let on_demand = presets::aws_2012()
        .compute
        .instance("small")
        .unwrap()
        .clone();
    println!("\n== Reserved vs on-demand (1-year term, 'small') ==");
    let breakeven = plan.breakeven_hours(on_demand.hourly).unwrap();
    println!(
        "  {}: {} upfront + {}/h; breakeven at {breakeven} of use per year",
        plan.name, plan.upfront, plan.hourly
    );
    for monthly_hours in [10.0, 100.0, 400.0, 730.0] {
        let yearly = Hours::new(monthly_hours * 12.0);
        let od = on_demand.hourly.scale(yearly.value());
        let ri = plan.total_cost(yearly);
        println!(
            "  {monthly_hours:>5.0} h/month: on-demand {od}, reserved {ri} -> {}",
            if plan.worthwhile(yearly, &on_demand) {
                "reserve"
            } else {
                "stay on-demand"
            }
        );
    }
}
