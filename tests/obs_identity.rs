//! Telemetry must be observational: running any solver with the
//! `mv_obs` registry enabled must produce *bit-identical* results to
//! the disabled run. Counters, spans and events may only read solver
//! state, never steer it.

use mv_select::{fixtures, Scenario, SolverKind};
use mv_units::{Hours, Money};
use proptest::prelude::*;

fn scenarios_for(problem: &mv_select::SelectionProblem) -> Vec<Scenario> {
    let baseline = problem.baseline();
    vec![
        Scenario::budget(baseline.cost() + Money::from_cents(40)),
        Scenario::time_limit(Hours::new(baseline.time.value() * 0.4)),
        Scenario::tradeoff_normalized(0.5),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every solver tier returns the same selection, the same cost
    /// breakdown, and the same time *to the bit* whether or not
    /// telemetry is recording.
    #[test]
    fn enabled_telemetry_never_changes_solver_output(seed in 0u64..10_000, n in 2usize..10) {
        let problem = fixtures::random_problem(seed, 3, n);
        for solver in [
            SolverKind::Greedy,
            SolverKind::LocalSearch,
            SolverKind::Lns,
        ] {
            for scenario in scenarios_for(&problem) {
                let dark = mv_select::solve(&problem, scenario, solver);
                let lit = {
                    let _guard = mv_obs::EnableGuard::new();
                    mv_select::solve(&problem, scenario, solver)
                };
                prop_assert_eq!(
                    &dark.evaluation, &lit.evaluation,
                    "telemetry changed {:?}/{:?}", solver, scenario
                );
                prop_assert_eq!(
                    dark.evaluation.time.value().to_bits(),
                    lit.evaluation.time.value().to_bits(),
                    "time not bit-identical under {:?}/{:?}", solver, scenario
                );
                prop_assert_eq!(&dark.baseline, &lit.baseline);
            }
        }
    }
}
