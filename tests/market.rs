//! Zero-volatility consistency: a market with constant prices and zero
//! interruption probability must reproduce `solve_horizon` bit for bit.
//!
//! This is the market counterpart of PR 3's zero-drift guarantee, and
//! it pins the whole identity chain at once: unit quotes re-price every
//! pricing component to a bit-identical policy (`scale_rates` clones on
//! factor 1.0), the re-resolved instance is the same catalog entry,
//! `InterruptionRisk::adjust` at probability 0 returns the charge
//! unchanged, and `EpochChain::solve_repriced` with an identity
//! transform is `solve_bounded` itself — so every per-epoch charged
//! cost, processing time, selection and billed instance-hour of
//! `Advisor::solve_market` must equal the risk-free horizon solve
//! exactly, for every sampled path, and the quantile envelope must
//! collapse to a point.

use std::sync::OnceLock;

use mvcloud::market::{MarketConfig, MarketScenario, PriceProcess, PriceTrace, SpotMarket};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, HorizonConfig, Scenario};
use proptest::prelude::*;

/// One measured advisor shared by every proptest case (building one is
/// the expensive part; the properties only vary the solve).
fn advisor() -> &'static Advisor {
    static ADVISOR: OnceLock<Advisor> = OnceLock::new();
    ADVISOR.get_or_init(|| {
        Advisor::build(sales_domain(1_000, 4, 5.0, 42), AdvisorConfig::default()).unwrap()
    })
}

/// A constant-price, zero-interruption market: either no processes at
/// all, or a stack whose members all quote the identity (a unit trace
/// plus a zero-volatility spot pinned at the on-demand price).
fn zero_volatility_market(epochs: usize, seed: u64, with_processes: bool) -> MarketScenario {
    let market = MarketScenario::constant(epochs, seed);
    if !with_processes {
        return market;
    }
    market
        .with(PriceProcess::Trace(PriceTrace::new()))
        .with(PriceProcess::Spot(SpotMarket::with_volatility(0.0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zero_volatility_market_reproduces_solve_horizon_bit_for_bit(
        epochs in 1usize..6,
        paths in 1usize..20,
        seed in 0u64..1_000,
        with_processes in 0u8..2,
        kind in 0u8..2,
        knob in 0.0f64..1.0,
    ) {
        let a = advisor();
        let baseline = a.problem().baseline();
        let scenario = match kind {
            0 => Scenario::time_limit(mvcloud::units::Hours::new(
                baseline.time.value() * (0.05 + 0.9 * knob),
            )),
            _ => Scenario::tradeoff_normalized(knob),
        };
        let horizon = a
            .solve_horizon(scenario, &HorizonConfig { epochs, ..HorizonConfig::default() })
            .unwrap();
        let market = a
            .solve_market(
                scenario,
                &MarketConfig {
                    market: zero_volatility_market(epochs, seed, with_processes == 1),
                    paths,
                    ..MarketConfig::default()
                },
            )
            .unwrap();

        prop_assert_eq!(market.paths.len(), paths);
        prop_assert_eq!(market.epochs.len(), epochs);
        prop_assert_eq!(market.plan_stability, 1.0);
        for (j, p) in market.paths.iter().enumerate() {
            prop_assert_eq!(p.path, j);
            // Bit-for-bit per-path equality with the horizon solve.
            prop_assert_eq!(p.total_cost, horizon.total_cost, "path {}", j);
            prop_assert_eq!(p.total_time, horizon.total_time, "path {}", j);
            prop_assert_eq!(
                p.billed_instance_hours,
                horizon.billed_instance_hours,
                "path {}",
                j
            );
            prop_assert_eq!(p.switches, 0);
            prop_assert_eq!(p.interruptions, 0);
            for (e, step) in horizon.steps.iter().enumerate() {
                prop_assert_eq!(
                    p.epoch_costs[e],
                    step.outcome.evaluation.cost(),
                    "path {} epoch {}",
                    j,
                    e
                );
                prop_assert_eq!(
                    &p.selections[e],
                    step.selection(),
                    "path {} epoch {}",
                    j,
                    e
                );
            }
        }
        // The Monte-Carlo envelope collapses to the horizon's numbers.
        for (e, er) in market.epochs.iter().enumerate() {
            let expected = horizon.epochs[e].charged_cost.to_dollars_f64();
            prop_assert_eq!(er.charged_cost.min, expected, "epoch {}", e);
            prop_assert_eq!(er.charged_cost.max, expected, "epoch {}", e);
            prop_assert_eq!(er.charged_cost.spread(), 0.0, "epoch {}", e);
            prop_assert_eq!(er.time_hours.min, horizon.epochs[e].time_hours, "epoch {}", e);
            prop_assert_eq!(er.time_hours.max, horizon.epochs[e].time_hours, "epoch {}", e);
            prop_assert_eq!(er.distinct_plans, 1);
            prop_assert_eq!(er.modal_share, 1.0);
            prop_assert_eq!(er.interruption.max, 0.0);
            prop_assert_eq!(er.compute_factor.min, 1.0);
            prop_assert_eq!(er.compute_factor.max, 1.0);
            prop_assert_eq!(&er.modal_selection, &horizon.epochs[e].selected, "epoch {}", e);
        }
    }
}

/// Risk is not a no-op: cranking interruption probability up makes the
/// risk-adjusted bill strictly dearer whenever any view is built or
/// maintained (the premium lands on materialization + maintenance).
/// Priced on Cumulus (per-started-minute billing): under AWS's
/// whole-hour rounding a sub-hour build bills the same hour whether it
/// runs once or an expected 2× — the premium only reaches the invoice
/// when the billing granularity can see it.
#[test]
fn interruption_risk_raises_the_bill() {
    let pricing = mvcloud::pricing::presets::cumulus();
    let a = Advisor::build(
        sales_domain(1_000, 4, 5.0, 42),
        AdvisorConfig {
            pricing,
            instance: "c.std".to_string(),
            ..AdvisorConfig::default()
        },
    )
    .unwrap();
    let a = &a;
    let scenario = Scenario::tradeoff_normalized(0.5);
    let calm = a
        .solve_market(
            scenario,
            &MarketConfig {
                market: MarketScenario::constant(4, 7),
                paths: 2,
                ..MarketConfig::default()
            },
        )
        .unwrap();
    let risky = a
        .solve_market(
            scenario,
            &MarketConfig {
                market: MarketScenario::constant(4, 7).with(PriceProcess::Trace(PriceTrace {
                    interruption: vec![0.5],
                    ..PriceTrace::new()
                })),
                paths: 2,
                ..MarketConfig::default()
            },
        )
        .unwrap();
    assert!(calm.paths[0].selections[0].count_ones() > 0);
    assert!(
        risky.total_cost.median > calm.total_cost.median,
        "risk premium should show up in the bill: {} vs {}",
        risky.total_cost.median,
        calm.total_cost.median
    );
}
