//! Property-based cross-solver consistency on random problems.
//!
//! Exhaustive enumeration is ground truth; branch-and-bound must match it
//! exactly, and the paper's knapsack and greedy must be feasible whenever
//! the optimum is and never worse than materializing nothing.

use mv_select::{fixtures, Scenario, SolverKind};
use mv_units::{Hours, Money};
use proptest::prelude::*;

fn scenarios_for(problem: &mv_select::SelectionProblem) -> Vec<Scenario> {
    let baseline = problem.baseline();
    vec![
        Scenario::budget(baseline.cost() + Money::from_cents(40)),
        Scenario::time_limit(Hours::new(baseline.time.value() * 0.4)),
        Scenario::tradeoff_normalized(0.5),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Branch-and-bound returns exactly the exhaustive optimum.
    #[test]
    fn bnb_matches_exhaustive(seed in 0u64..10_000, n in 2usize..8) {
        let problem = fixtures::random_problem(seed, 3, n);
        for scenario in scenarios_for(&problem) {
            let x = mv_select::solve(&problem, scenario, SolverKind::Exhaustive);
            let b = mv_select::solve(&problem, scenario, SolverKind::BranchAndBound);
            prop_assert_eq!(x.feasible(), b.feasible(), "{:?}", scenario);
            prop_assert!(
                (x.objective() - b.objective()).abs() < 1e-9,
                "{:?}: exhaustive {} vs bnb {}",
                scenario, x.objective(), b.objective()
            );
        }
    }

    /// Heuristics are sound: feasible when the optimum is feasible, and
    /// never worse than the do-nothing baseline.
    #[test]
    fn heuristics_are_sound(seed in 0u64..10_000, n in 2usize..10) {
        let problem = fixtures::random_problem(seed, 4, n);
        let baseline = problem.baseline();
        for scenario in scenarios_for(&problem) {
            let x = mv_select::solve(&problem, scenario, SolverKind::Exhaustive);
            for solver in [SolverKind::PaperKnapsack, SolverKind::Greedy] {
                let h = mv_select::solve(&problem, scenario, solver);
                if x.feasible() {
                    prop_assert!(
                        h.feasible(),
                        "{:?}: {} missed a feasible solution",
                        scenario, solver.name()
                    );
                }
                // Never worse than selecting nothing.
                if scenario.feasible(&baseline) {
                    let base_obj = scenario.objective(&baseline, &baseline);
                    prop_assert!(
                        h.objective() <= base_obj + 1e-9,
                        "{:?}: {} worse than baseline",
                        scenario, solver.name()
                    );
                }
            }
        }
    }

    /// The chosen selection's reported evaluation is self-consistent:
    /// re-evaluating the selection reproduces time, cost and breakdown.
    #[test]
    fn outcomes_are_reproducible(seed in 0u64..10_000, n in 2usize..10) {
        let problem = fixtures::random_problem(seed, 3, n);
        let scenario = Scenario::tradeoff_normalized(0.4);
        for solver in [
            SolverKind::PaperKnapsack,
            SolverKind::Exhaustive,
            SolverKind::Greedy,
            SolverKind::BranchAndBound,
        ] {
            let o = mv_select::solve(&problem, scenario, solver);
            let re = problem.evaluate(&o.evaluation.selection);
            prop_assert_eq!(re.time, o.evaluation.time);
            prop_assert_eq!(re.breakdown, o.evaluation.breakdown);
        }
    }

    /// MV1 with the baseline's own cost as budget is always feasible
    /// (materializing nothing satisfies it), so solvers must return a
    /// feasible outcome.
    #[test]
    fn baseline_budget_always_feasible(seed in 0u64..10_000, n in 2usize..10) {
        let problem = fixtures::random_problem(seed, 3, n);
        let scenario = Scenario::budget(problem.baseline().cost());
        for solver in [
            SolverKind::PaperKnapsack,
            SolverKind::Exhaustive,
            SolverKind::Greedy,
            SolverKind::BranchAndBound,
        ] {
            let o = mv_select::solve(&problem, scenario, solver);
            prop_assert!(o.feasible(), "{}", solver.name());
        }
    }
}
