//! End-to-end multi-epoch horizon: the myopic-vs-chain regression and
//! the advisor's horizon report guarantees.
//!
//! The centerpiece pins the path-dependence claim from `mv_select::
//! epoch`: on a drifting horizon, re-solving each epoch from scratch
//! (the "run the single-period advisor every month" policy) churns
//! views and re-pays materializations the transition-aware chain keeps
//! sunk, so the chain's horizon total is *strictly* cheaper.

use mvcloud::select::epoch::{horizon_cost, horizon_time};
use mvcloud::select::fixtures::churn_chain;
use mvcloud::units::{Money, Months};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, HorizonConfig, Scenario};

#[test]
fn transition_aware_chain_strictly_beats_myopic_resolving() {
    // The alternating two-specialist horizon (see
    // `mv_select::fixtures::churn_chain`): two queries swap hot/cold
    // every epoch, each with a specialist view behind an 8-hour build.
    let chain = churn_chain(6);
    let scenario = Scenario::tradeoff(0.02);
    let myopic = chain.solve_myopic(scenario);
    let aware = chain.solve(scenario);

    // The myopic policy really churns: every epoch it adds the hot
    // specialist afresh (and pays its materialization again).
    let rebuilds: usize = myopic.iter().map(|s| s.added.len()).sum();
    assert!(
        rebuilds >= 6,
        "myopic re-materialized only {rebuilds} times"
    );
    // The chain stops buying builds once both specialists are resident.
    let chain_builds: usize = aware.iter().map(|s| s.added.len()).sum();
    assert!(chain_builds <= 2, "chain kept re-buying: {chain_builds}");

    let chain_total = horizon_cost(&aware);
    let myopic_total = horizon_cost(&myopic);
    assert!(
        chain_total < myopic_total,
        "chain {chain_total} must be strictly cheaper than myopic {myopic_total}"
    );
    // On this horizon the chain is faster too: both specialists stay
    // resident, so both hot and cold queries are always accelerated.
    assert!(horizon_time(&aware) <= horizon_time(&myopic));
}

#[test]
fn advisor_horizon_report_reconciles_end_to_end() {
    let advisor = Advisor::build(sales_domain(1_500, 5, 10.0, 42), AdvisorConfig::default())
        .expect("advisor builds");
    let scenario = Scenario::tradeoff_normalized(0.5);
    let horizon = HorizonConfig {
        epochs: 12,
        evolution: mvcloud::lattice::WorkloadEvolution::seasonal(12, 0.9),
        commitment: Some(mvcloud::pricing::CommitmentPlan::aws_small_1yr()),
    };
    let report = advisor.solve_horizon(scenario, &horizon).expect("solves");
    assert_eq!(report.epochs.len(), 12);

    // Per-epoch: the provider-side invoice equals the chain's charged
    // prediction, and the charged bill never exceeds full price.
    let mut cumulative = Money::ZERO;
    for e in &report.epochs {
        assert_eq!(e.invoice.total(), e.charged_cost, "epoch {}", e.epoch);
        assert!(e.charged_cost <= e.full_price_cost, "epoch {}", e.epoch);
        cumulative += e.charged_cost;
        assert_eq!(e.cumulative_cost, cumulative, "epoch {}", e.epoch);
        // Transition bookkeeping partitions the selection.
        assert_eq!(e.selected.len(), e.added.len() + e.kept.len());
    }
    assert_eq!(report.total_cost, cumulative);

    // Epoch 0 carries nothing; every kept view this epoch was selected
    // in the previous one.
    assert!(report.epochs[0].kept.is_empty());
    for w in report.epochs.windows(2) {
        for kept in &w[1].kept {
            assert!(w[0].selected.contains(kept));
        }
        for dropped in &w[1].dropped {
            assert!(w[0].selected.contains(dropped));
        }
    }

    // The commitment comparison prices exactly the horizon's billed
    // compute, both ways.
    let cmp = report.commitment.as_ref().expect("plan supplied");
    let config = advisor.config();
    let hourly = config
        .pricing
        .compute
        .instance(&config.instance)
        .unwrap()
        .hourly;
    assert_eq!(
        cmp.on_demand,
        hourly.scale(report.billed_instance_hours.value())
    );
    let plan = mvcloud::pricing::CommitmentPlan::aws_small_1yr();
    assert_eq!(
        cmp.reserved,
        plan.fleet_horizon_cost(
            Months::new(12.0),
            report.billed_instance_hours,
            config.nb_instances
        )
    );

    // The rendered timeline has one row per epoch.
    let csv = report.timeline_csv();
    assert_eq!(csv.lines().count(), 13);
}

#[test]
fn advisor_chain_never_loses_to_myopic_on_a_seasonal_year() {
    let advisor = Advisor::build(sales_domain(1_000, 4, 8.0, 7), AdvisorConfig::default())
        .expect("advisor builds");
    let scenario = Scenario::tradeoff(0.05);
    let horizon = HorizonConfig {
        epochs: 8,
        evolution: mvcloud::lattice::WorkloadEvolution::seasonal(4, 1.0),
        commitment: None,
    };
    let aware = advisor.solve_horizon(scenario, &horizon).expect("chain");
    let myopic = advisor
        .solve_horizon_myopic(scenario, &horizon)
        .expect("myopic");
    assert!(
        aware.total_cost <= myopic.total_cost,
        "chain {} lost to myopic {}",
        aware.total_cost,
        myopic.total_cost
    );
}
