//! Cross-crate integration: the full advisor pipeline from generated data
//! to a reconciled invoice, under every scenario × solver combination.

use mvcloud::units::{Gb, Hours, Money, Months};
use mvcloud::{
    sales_domain, ssb_domain, Advisor, AdvisorConfig, CandidateStrategy, Scenario, SizingMode,
    SolverKind,
};

fn advisor() -> Advisor {
    Advisor::build(sales_domain(3_000, 5, 1.0, 42), AdvisorConfig::default()).unwrap()
}

#[test]
fn every_scenario_and_solver_terminates_feasibly() {
    let a = advisor();
    let baseline = a.problem().baseline();
    let scenarios = [
        Scenario::budget(baseline.cost() + Money::from_dollars(5)),
        Scenario::time_limit(Hours::new(baseline.time.value() * 0.5)),
        Scenario::tradeoff_normalized(0.3),
        Scenario::tradeoff(0.65),
    ];
    let solvers = [
        SolverKind::PaperKnapsack,
        SolverKind::Exhaustive,
        SolverKind::Greedy,
        SolverKind::BranchAndBound,
    ];
    for scenario in scenarios {
        for solver in solvers {
            let o = a.solve(scenario, solver);
            assert!(
                o.feasible(),
                "{} with {} infeasible",
                scenario.label(),
                solver.name()
            );
            // Views are always desirable: never slower than baseline.
            assert!(o.evaluation.time <= o.baseline.time);
        }
    }
}

#[test]
fn selected_views_answer_all_covered_queries_exactly() {
    let a = advisor();
    let o = a.solve(
        Scenario::budget(Money::from_dollars(10_000)),
        SolverKind::Greedy,
    );
    let catalog = a.materialize_selection(&o).unwrap();
    assert!(!catalog.is_empty());
    for q in a.queries() {
        let (via_catalog, stats, used) = catalog.execute(q, &a.domain().base).unwrap();
        let (direct, direct_stats) = q.execute(&a.domain().base).unwrap();
        assert_eq!(
            via_catalog.to_sorted_rows(),
            direct.to_sorted_rows(),
            "{} differs through the catalog",
            q.name
        );
        if used.is_some() {
            // Answering from a view must scan no more than the base did.
            assert!(stats.rows_scanned <= direct_stats.rows_scanned);
        }
    }
}

#[test]
fn invoice_reconciles_under_all_scenarios() {
    let a = advisor();
    let baseline = a.problem().baseline();
    for scenario in [
        Scenario::budget(baseline.cost() + Money::from_dollars(2)),
        Scenario::time_limit(Hours::new(baseline.time.value() * 0.8)),
        Scenario::tradeoff_normalized(0.5),
    ] {
        let o = a.solve(scenario, SolverKind::BranchAndBound);
        let invoice = a.usage_ledger(&o).invoice(&a.config().pricing).unwrap();
        assert_eq!(
            invoice.total(),
            o.evaluation.cost(),
            "{} invoice mismatch",
            scenario.label()
        );
    }
}

#[test]
fn maintenance_charges_appear_when_data_changes() {
    let domain = sales_domain(2_000, 3, 1.0, 42);
    let static_ds = Advisor::build(
        domain.clone(),
        AdvisorConfig {
            maintenance_delta_fraction: 0.0,
            ..AdvisorConfig::default()
        },
    )
    .unwrap();
    let live_ds = Advisor::build(
        domain,
        AdvisorConfig {
            maintenance_delta_fraction: 0.05,
            ..AdvisorConfig::default()
        },
    )
    .unwrap();
    for (s, l) in static_ds
        .problem()
        .candidates()
        .iter()
        .zip(live_ds.problem().candidates())
    {
        assert_eq!(s.maintenance, Hours::ZERO);
        assert!(l.maintenance > Hours::ZERO, "{} has no maintenance", l.name);
    }
}

#[test]
fn sizing_modes_agree_at_identity_scale() {
    // When the engine table is the whole dataset (simulated size == engine
    // size), measured scaling is exact; extrapolation must stay within a
    // small factor of it for base times (same rows, same work).
    let domain = sales_domain(2_000, 3, 1.0, 42);
    let engine_size = domain.base.size();
    let mk = |sizing| {
        Advisor::build(
            sales_domain(2_000, 3, 1.0, 42),
            AdvisorConfig {
                simulated_dataset: Gb::new(engine_size.value()),
                sizing,
                ..AdvisorConfig::default()
            },
        )
        .unwrap()
    };
    let measured = mk(SizingMode::MeasuredScaled);
    let extrapolated = mk(SizingMode::Extrapolated);
    for (m, e) in measured
        .problem()
        .model()
        .context()
        .workload
        .iter()
        .zip(&extrapolated.problem().model().context().workload)
    {
        let ratio = m.base_time.value() / e.base_time.value();
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{}: measured {} vs extrapolated {}",
            m.name,
            m.base_time,
            e.base_time
        );
    }
}

#[test]
fn ssb_domain_full_pipeline() {
    let domain = ssb_domain(3_000, 1.0, 7);
    let advisor = Advisor::build(
        domain,
        AdvisorConfig {
            months: Months::new(1.0),
            candidates: CandidateStrategy::HruGreedy(6),
            ..AdvisorConfig::default()
        },
    )
    .unwrap();
    assert!(advisor.problem().len() <= 6);
    let o = advisor.solve(
        Scenario::budget(Money::from_dollars(1_000)),
        SolverKind::Greedy,
    );
    assert!(o.feasible());
    assert!(o.evaluation.time < o.baseline.time);
    // The catalog answers SSB queries correctly too.
    let catalog = advisor.materialize_selection(&o).unwrap();
    for q in advisor.queries().iter().take(4) {
        let (via, _, _) = catalog.execute(q, &advisor.domain().base).unwrap();
        let (direct, _) = q.execute(&advisor.domain().base).unwrap();
        assert_eq!(via.to_sorted_rows(), direct.to_sorted_rows());
    }
}

#[test]
fn threads_do_not_change_the_selection_problem() {
    let mk = |threads| {
        Advisor::build(
            sales_domain(3_000, 5, 1.0, 42),
            AdvisorConfig {
                threads,
                ..AdvisorConfig::default()
            },
        )
        .unwrap()
    };
    let serial = mk(1);
    let parallel = mk(4);
    // Work metering is thread-independent, so the derived charges must be
    // identical.
    for (s, p) in serial
        .problem()
        .candidates()
        .iter()
        .zip(parallel.problem().candidates())
    {
        assert_eq!(s, p);
    }
}
