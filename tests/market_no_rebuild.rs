//! Acceptance: the sampled-path hot loop of `Advisor::solve_market`
//! reuses evaluators via `retarget`/`update_charge` — no per-epoch
//! rebuild.
//!
//! `IncrementalEvaluator::build_count` counts every full O(n·m)
//! evaluator construction process-wide. A K-path, E-epoch market solve
//! must build exactly K evaluators (one per path's chain, at epoch 0);
//! a per-epoch rebuild would show up as K·E. This file holds exactly
//! one test so the counter delta cannot be perturbed by concurrent
//! tests in the same process.

use mvcloud::fleet::FleetConfig;
use mvcloud::market::{CorrelatedHazard, MarketConfig, MarketScenario, PriceProcess, SpotMarket};
use mvcloud::select::IncrementalEvaluator;
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario};

#[test]
fn k_path_market_solve_builds_one_evaluator_per_path() {
    const PATHS: usize = 16;
    const EPOCHS: usize = 6;
    let advisor =
        Advisor::build(sales_domain(1_000, 4, 5.0, 42), AdvisorConfig::default()).unwrap();
    // A stochastic market, so all K paths are genuinely distinct solves
    // (a deterministic market is deduplicated to one chain solve). The
    // spot premium also re-risks charges at every boundary, so the loop
    // really does splice per epoch — through update_charge, not
    // rebuilds.
    let market = MarketScenario::constant(EPOCHS, 99)
        .with(PriceProcess::Spot(SpotMarket::discounted(0.5, 0.4)));
    let config = MarketConfig {
        market: market.clone(),
        paths: PATHS,
        ..MarketConfig::default()
    };

    let before = IncrementalEvaluator::build_count();
    let report = advisor
        .solve_market(Scenario::tradeoff_normalized(0.5), &config)
        .unwrap();
    let built = IncrementalEvaluator::build_count() - before;

    assert_eq!(report.paths.len(), PATHS);
    assert_eq!(report.epochs.len(), EPOCHS);
    assert_eq!(
        built, PATHS,
        "expected one evaluator build per sampled path; \
         {built} builds for {PATHS} paths × {EPOCHS} epochs means the \
         hot loop is rebuilding instead of retargeting"
    );

    // The mixed-fleet case: joint selection + placement over a hedged
    // fleet with correlated crunch epochs. Placement flips are charge
    // splices on the same warm evaluator, so the bound is identical —
    // one build per path, no matter how many views move pools.
    let fleet_config = FleetConfig {
        market: market.with(PriceProcess::Correlated(
            CorrelatedHazard::bursty(0.35, 0.8, 0.6).with_crunch_compute(1.5),
        )),
        paths: PATHS,
        compare_pure: false,
        ..FleetConfig::default()
    };
    let before = IncrementalEvaluator::build_count();
    let fleet_report = advisor
        .solve_fleet(Scenario::tradeoff_normalized(0.5), &fleet_config)
        .unwrap();
    let built = IncrementalEvaluator::build_count() - before;

    assert_eq!(fleet_report.paths.len(), PATHS);
    assert_eq!(fleet_report.epochs.len(), EPOCHS);
    assert_eq!(
        built, PATHS,
        "expected one evaluator build per sampled fleet path; \
         {built} builds for {PATHS} paths × {EPOCHS} epochs means \
         placement moves are rebuilding instead of splicing"
    );
}
