//! Acceptance: the Monte-Carlo hot path of `Advisor::solve_market` /
//! `solve_fleet` pays *tree-shaped* work — one evaluator build per
//! scenario-tree root, one warm `retarget` per tree edge, one
//! evaluator fork per extra sibling at each split — instead of per
//! path × epoch.
//!
//! `IncrementalEvaluator::{build_count, retarget_count, fork_count}`
//! count those operations process-wide. This file holds exactly one
//! test so the counter deltas cannot be perturbed by concurrent tests
//! in the same process.

use mvcloud::fleet::FleetConfig;
use mvcloud::market::{
    CorrelatedHazard, MarketConfig, MarketScenario, PriceProcess, ScenarioTree, SpotMarket,
};
use mvcloud::select::IncrementalEvaluator;
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario};

/// The work a tree-aware solve must pay for this market: (evaluator
/// builds = roots, retargets = edges, forks = Σ max(0, children − 1)).
fn tree_shape(market: &MarketScenario, paths: usize) -> (usize, usize, usize) {
    let sampled: Vec<_> = (0..paths).map(|j| market.path(j)).collect();
    let tree = ScenarioTree::from_paths(&sampled);
    let forks = tree
        .nodes()
        .iter()
        .map(|n| n.children.len().saturating_sub(1))
        .sum();
    (tree.roots().len(), tree.edges(), forks)
}

/// Snapshot of the three process-wide evaluator counters.
fn counters() -> (usize, usize, usize) {
    (
        IncrementalEvaluator::build_count(),
        IncrementalEvaluator::retarget_count(),
        IncrementalEvaluator::fork_count(),
    )
}

#[test]
fn market_solves_pay_tree_shaped_work() {
    const PATHS: usize = 16;
    const EPOCHS: usize = 6;
    let advisor =
        Advisor::build(sales_domain(1_000, 4, 5.0, 42), AdvisorConfig::default()).unwrap();
    // A stochastic market, so paths genuinely diverge (while still
    // sharing prefixes — the spot process pins epoch 0, so the forest
    // is one tree). The spot premium also re-risks charges at every
    // boundary, so the loop really does splice per transition —
    // through update_charge, not rebuilds.
    let market = MarketScenario::constant(EPOCHS, 99)
        .with(PriceProcess::Spot(SpotMarket::discounted(0.5, 0.4)));
    let config = MarketConfig {
        market: market.clone(),
        paths: PATHS,
        ..MarketConfig::default()
    };
    let (roots, edges, forks) = tree_shape(&market, PATHS);
    assert!(
        roots + edges < PATHS * EPOCHS,
        "fixture must actually share prefixes"
    );

    let before = counters();
    let report = advisor
        .solve_market(Scenario::tradeoff_normalized(0.5), &config)
        .unwrap();
    let after = counters();

    assert_eq!(report.paths.len(), PATHS);
    assert_eq!(report.epochs.len(), EPOCHS);
    assert_eq!(report.tree_nodes, Some(roots + edges));
    assert_eq!(
        after.0 - before.0,
        roots,
        "expected one evaluator build per tree root; more means the \
         hot loop is rebuilding instead of branching the warm state"
    );
    assert_eq!(
        after.1 - before.1,
        edges,
        "expected one retarget per tree edge ({edges}), not per \
         path × epoch ({})",
        PATHS * (EPOCHS - 1)
    );
    assert_eq!(
        after.2 - before.2,
        forks,
        "expected one evaluator fork per extra sibling at each split"
    );

    // The flat reference loop pays per distinct path × epoch: one
    // build per representative chain, one retarget per epoch boundary
    // of each, and no forks at all.
    let flat_config = MarketConfig {
        flat: true,
        ..config
    };
    let before = counters();
    let flat_report = advisor
        .solve_market(Scenario::tradeoff_normalized(0.5), &flat_config)
        .unwrap();
    let after = counters();
    let distinct = flat_report.distinct_solves;
    assert_eq!(after.0 - before.0, distinct);
    assert_eq!(after.1 - before.1, distinct * (EPOCHS - 1));
    assert_eq!(after.2 - before.2, 0);
    assert!(
        roots + edges < distinct * EPOCHS,
        "the tree must pay fewer epoch-solves than the flat loop"
    );

    // The mixed-fleet case: joint selection + placement over a hedged
    // fleet with correlated crunch epochs. Placement flips are charge
    // splices on the same warm evaluator, so the bounds are identical
    // tree-shaped work — no matter how many views move pools.
    let fleet_market = market.with(PriceProcess::Correlated(
        CorrelatedHazard::bursty(0.35, 0.8, 0.6).with_crunch_compute(1.5),
    ));
    let fleet_config = FleetConfig {
        market: fleet_market.clone(),
        paths: PATHS,
        compare_pure: false,
        ..FleetConfig::default()
    };
    let (roots, edges, forks) = tree_shape(&fleet_market, PATHS);
    let before = counters();
    let fleet_report = advisor
        .solve_fleet(Scenario::tradeoff_normalized(0.5), &fleet_config)
        .unwrap();
    let after = counters();

    assert_eq!(fleet_report.paths.len(), PATHS);
    assert_eq!(fleet_report.epochs.len(), EPOCHS);
    assert_eq!(fleet_report.tree_nodes, Some(roots + edges));
    assert_eq!(
        after.0 - before.0,
        roots,
        "expected one evaluator build per fleet tree root"
    );
    assert_eq!(after.1 - before.1, edges);
    assert_eq!(after.2 - before.2, forks);
}
