//! Acceptance: the Monte-Carlo hot path of `Advisor::solve_market` /
//! `solve_fleet` pays *tree-shaped* work — one evaluator build per
//! scenario-tree root, one warm `retarget` per tree edge, one
//! evaluator fork per extra sibling at each split — instead of per
//! path × epoch.
//!
//! The evaluator reports those operations through the [`mv_obs`]
//! counter registry. [`mv_obs::CounterGuard`] owns the delta sections:
//! it serializes concurrent guard windows process-wide, enables
//! telemetry for its lifetime, and baselines every counter — so the
//! deltas below cannot interleave with another guarded test. This file
//! still holds exactly one test: unguarded solver work elsewhere in
//! the same process would count into an open guard window.

use mv_obs::Counter;
use mvcloud::fleet::FleetConfig;
use mvcloud::market::{
    CorrelatedHazard, MarketConfig, MarketScenario, PriceProcess, ScenarioTree, SpotMarket,
};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario};

/// The work a tree-aware solve must pay for this market: (evaluator
/// builds = roots, retargets = edges, forks = Σ max(0, children − 1)).
fn tree_shape(market: &MarketScenario, paths: usize) -> (u64, u64, u64) {
    let sampled: Vec<_> = (0..paths).map(|j| market.path(j)).collect();
    let tree = ScenarioTree::from_paths(&sampled);
    let forks = tree
        .nodes()
        .iter()
        .map(|n| n.children.len().saturating_sub(1) as u64)
        .sum();
    (tree.roots().len() as u64, tree.edges() as u64, forks)
}

/// The three evaluator counter deltas since the guard's baseline.
fn deltas(guard: &mv_obs::CounterGuard) -> (u64, u64, u64) {
    (
        guard.delta(Counter::EvaluatorBuild),
        guard.delta(Counter::EvaluatorRetarget),
        guard.delta(Counter::EvaluatorFork),
    )
}

#[test]
fn market_solves_pay_tree_shaped_work() {
    const PATHS: usize = 16;
    const EPOCHS: usize = 6;
    let advisor =
        Advisor::build(sales_domain(1_000, 4, 5.0, 42), AdvisorConfig::default()).unwrap();
    // A stochastic market, so paths genuinely diverge (while still
    // sharing prefixes — the spot process pins epoch 0, so the forest
    // is one tree). The spot premium also re-risks charges at every
    // boundary, so the loop really does splice per transition —
    // through update_charge, not rebuilds.
    let market = MarketScenario::constant(EPOCHS, 99)
        .with(PriceProcess::Spot(SpotMarket::discounted(0.5, 0.4)));
    let config = MarketConfig {
        market: market.clone(),
        paths: PATHS,
        ..MarketConfig::default()
    };
    let (roots, edges, forks) = tree_shape(&market, PATHS);
    assert!(
        roots + edges < (PATHS * EPOCHS) as u64,
        "fixture must actually share prefixes"
    );

    let mut counters = mv_obs::CounterGuard::scoped();
    let report = advisor
        .solve_market(Scenario::tradeoff_normalized(0.5), &config)
        .unwrap();
    let (builds, retargets, forked) = deltas(&counters);

    assert_eq!(report.paths.len(), PATHS);
    assert_eq!(report.epochs.len(), EPOCHS);
    assert_eq!(report.tree_nodes, Some((roots + edges) as usize));
    assert_eq!(
        builds, roots,
        "expected one evaluator build per tree root; more means the \
         hot loop is rebuilding instead of branching the warm state"
    );
    assert_eq!(
        retargets,
        edges,
        "expected one retarget per tree edge ({edges}), not per \
         path × epoch ({})",
        PATHS * (EPOCHS - 1)
    );
    assert_eq!(
        forked, forks,
        "expected one evaluator fork per extra sibling at each split"
    );

    // The flat reference loop pays per distinct path × epoch: one
    // build per representative chain, one retarget per epoch boundary
    // of each, and no forks at all.
    let flat_config = MarketConfig {
        flat: true,
        ..config
    };
    counters.rebase();
    let flat_report = advisor
        .solve_market(Scenario::tradeoff_normalized(0.5), &flat_config)
        .unwrap();
    let (builds, retargets, forked) = deltas(&counters);
    let distinct = flat_report.distinct_solves as u64;
    assert_eq!(builds, distinct);
    assert_eq!(retargets, distinct * (EPOCHS as u64 - 1));
    assert_eq!(forked, 0);
    assert!(
        roots + edges < distinct * EPOCHS as u64,
        "the tree must pay fewer epoch-solves than the flat loop"
    );

    // The mixed-fleet case: joint selection + placement over a hedged
    // fleet with correlated crunch epochs. Placement flips are charge
    // splices on the same warm evaluator, so the bounds are identical
    // tree-shaped work — no matter how many views move pools.
    let fleet_market = market.with(PriceProcess::Correlated(
        CorrelatedHazard::bursty(0.35, 0.8, 0.6).with_crunch_compute(1.5),
    ));
    let fleet_config = FleetConfig {
        market: fleet_market.clone(),
        paths: PATHS,
        compare_pure: false,
        ..FleetConfig::default()
    };
    let (roots, edges, forks) = tree_shape(&fleet_market, PATHS);
    counters.rebase();
    let fleet_report = advisor
        .solve_fleet(Scenario::tradeoff_normalized(0.5), &fleet_config)
        .unwrap();
    let (builds, retargets, forked) = deltas(&counters);

    assert_eq!(fleet_report.paths.len(), PATHS);
    assert_eq!(fleet_report.epochs.len(), EPOCHS);
    assert_eq!(fleet_report.tree_nodes, Some((roots + edges) as usize));
    assert_eq!(
        builds, roots,
        "expected one evaluator build per fleet tree root"
    );
    assert_eq!(retargets, edges);
    assert_eq!(forked, forks);

    // The report's own telemetry section reconciles with the guard:
    // solve_fleet captured its delta over the same enabled window.
    let telemetry = fleet_report.telemetry.expect("guard enabled telemetry");
    assert_eq!(telemetry.counter("evaluator/build"), roots);
    assert_eq!(telemetry.span_count("solve_tree/node"), roots + edges);
}
