//! Scenario-tree ≡ flat identity: the tree-routed Monte-Carlo solvers
//! must reproduce the flat per-path reference loop **bit for bit**.
//!
//! The tree solves each shared quote-prefix once and branches the warm
//! evaluator at split points; the flat loop solves every path as its
//! own chain. A node's search trajectory depends only on its costing
//! model, its effective charges and the selection it inherits — all
//! shared along a prefix — so the two routes must agree exactly: same
//! per-path bills, hours, selections and placements, same quantile
//! envelopes, same plan stability, same commitment comparison. These
//! properties drive both `Advisor::solve_market` (volatile spot
//! markets) and `Advisor::solve_fleet` (hedged fleets under correlated
//! interruption crunches) over random market shapes.

use std::sync::OnceLock;

use mvcloud::fleet::FleetConfig;
use mvcloud::market::{CorrelatedHazard, MarketConfig, MarketScenario, PriceProcess, SpotMarket};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario};
use proptest::prelude::*;

/// One measured advisor shared by every proptest case (building one is
/// the expensive part; the properties only vary the solve).
fn advisor() -> &'static Advisor {
    static ADVISOR: OnceLock<Advisor> = OnceLock::new();
    ADVISOR.get_or_init(|| {
        Advisor::build(sales_domain(1_000, 4, 5.0, 42), AdvisorConfig::default()).unwrap()
    })
}

/// A genuinely volatile market: a mean-reverting spot process with a
/// random discount and volatility, optionally stacked with a bursty
/// correlated-hazard regime (correlated interruption epochs).
fn volatile_market(
    epochs: usize,
    seed: u64,
    discount: f64,
    volatility: f64,
    hazard: Option<(f64, f64)>,
) -> MarketScenario {
    let mut market = MarketScenario::constant(epochs, seed).with(PriceProcess::Spot(
        SpotMarket::discounted(discount, volatility),
    ));
    if let Some((calm_to_crunch, crunch_hazard)) = hazard {
        market = market.with(PriceProcess::Correlated(
            CorrelatedHazard::bursty(calm_to_crunch, 0.7, crunch_hazard).with_crunch_compute(1.3),
        ));
    }
    market
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tree_market_solve_matches_flat_bit_for_bit(
        epochs in 2usize..6,
        paths in 2usize..14,
        seed in 0u64..1_000,
        discount in 0.3f64..0.9,
        volatility in 0.1f64..0.7,
        alpha in 0.1f64..0.9,
    ) {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(alpha);
        let tree_cfg = MarketConfig {
            market: volatile_market(epochs, seed, discount, volatility, None),
            paths,
            commitment: Some(mvcloud::pricing::CommitmentPlan::aws_small_1yr()),
            ..MarketConfig::default()
        };
        let flat_cfg = MarketConfig { flat: true, ..tree_cfg.clone() };
        let tree = a.solve_market(scenario, &tree_cfg).unwrap();
        let flat = a.solve_market(scenario, &flat_cfg).unwrap();

        // Quantile envelopes.
        prop_assert_eq!(tree.total_cost, flat.total_cost);
        prop_assert_eq!(tree.total_time_hours, flat.total_time_hours);
        prop_assert_eq!(tree.plan_stability, flat.plan_stability);
        // Per-path bills and plans.
        prop_assert_eq!(tree.paths.len(), flat.paths.len());
        for (t, f) in tree.paths.iter().zip(&flat.paths) {
            prop_assert_eq!(t.total_cost, f.total_cost);
            prop_assert_eq!(t.total_time, f.total_time);
            prop_assert_eq!(t.billed_instance_hours, f.billed_instance_hours);
            prop_assert_eq!(t.compute_bill, f.compute_bill);
            prop_assert_eq!(&t.epoch_costs, &f.epoch_costs);
            prop_assert_eq!(&t.selections, &f.selections);
            prop_assert_eq!(t.switches, f.switches);
            prop_assert_eq!(t.interruptions, f.interruptions);
        }
        // Per-epoch envelope and modal plans.
        for (t, f) in tree.epochs.iter().zip(&flat.epochs) {
            prop_assert_eq!(t.charged_cost, f.charged_cost);
            prop_assert_eq!(t.cumulative_cost, f.cumulative_cost);
            prop_assert_eq!(t.time_hours, f.time_hours);
            prop_assert_eq!(t.distinct_plans, f.distinct_plans);
            prop_assert_eq!(t.modal_share, f.modal_share);
            prop_assert_eq!(&t.modal_selection, &f.modal_selection);
        }
        // Commitment comparison prices identically.
        let tc = tree.commitment.unwrap();
        let fc = flat.commitment.unwrap();
        prop_assert_eq!(tc.spot_compute, fc.spot_compute);
        prop_assert_eq!(tc.reserved, fc.reserved);
        prop_assert_eq!(tc.saving, fc.saving);
        prop_assert_eq!(tc.reserved_wins_share, fc.reserved_wins_share);
        // Both modes dedup to the same number of distinct solves, and
        // the tree never pays more epoch-solves than the flat loop.
        prop_assert_eq!(tree.distinct_solves, flat.distinct_solves);
        let nodes = tree.tree_nodes.unwrap();
        prop_assert!(nodes <= flat.distinct_solves * epochs);
    }

    #[test]
    fn tree_fleet_solve_matches_flat_bit_for_bit(
        epochs in 2usize..5,
        paths in 2usize..10,
        seed in 0u64..1_000,
        discount in 0.3f64..0.8,
        volatility in 0.0f64..0.5,
        calm_to_crunch in 0.1f64..0.6,
        crunch_hazard in 0.2f64..0.8,
        rebalance in proptest::bool::ANY,
        alpha in 0.2f64..0.8,
    ) {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(alpha);
        let mut fleet = mvcloud::pricing::FleetPlan::hedged("hedged");
        fleet.rebalance = rebalance;
        let tree_cfg = FleetConfig {
            market: volatile_market(
                epochs, seed, discount, volatility,
                Some((calm_to_crunch, crunch_hazard)),
            ),
            paths,
            fleet,
            compare_pure: false,
            ..FleetConfig::default()
        };
        let flat_cfg = FleetConfig { flat: true, ..tree_cfg.clone() };
        let tree = a.solve_fleet(scenario, &tree_cfg).unwrap();
        let flat = a.solve_fleet(scenario, &flat_cfg).unwrap();

        prop_assert_eq!(tree.total_cost, flat.total_cost);
        prop_assert_eq!(tree.total_time_hours, flat.total_time_hours);
        prop_assert_eq!(tree.hedge_ratio, flat.hedge_ratio);
        prop_assert_eq!(tree.plan_stability, flat.plan_stability);
        for (t, f) in tree.paths.iter().zip(&flat.paths) {
            prop_assert_eq!(t.total_cost, f.total_cost);
            prop_assert_eq!(t.total_time, f.total_time);
            prop_assert_eq!(t.billed_instance_hours, f.billed_instance_hours);
            prop_assert_eq!(t.reserved_hours, f.reserved_hours);
            prop_assert_eq!(t.spot_hours, f.spot_hours);
            prop_assert_eq!(t.spot_share, f.spot_share);
            prop_assert_eq!(&t.epoch_costs, &f.epoch_costs);
            prop_assert_eq!(&t.selections, &f.selections);
            prop_assert_eq!(&t.placements, &f.placements);
            prop_assert_eq!(t.switches, f.switches);
            prop_assert_eq!(t.moves, f.moves);
        }
        for (t, f) in tree.epochs.iter().zip(&flat.epochs) {
            prop_assert_eq!(t.charged_cost, f.charged_cost);
            prop_assert_eq!(t.hedge_ratio, f.hedge_ratio);
            prop_assert_eq!(t.modal_share, f.modal_share);
            prop_assert_eq!(&t.modal_selection, &f.modal_selection);
        }
        prop_assert_eq!(tree.distinct_solves, flat.distinct_solves);
        match tree.tree_nodes {
            Some(nodes) => prop_assert!(nodes <= flat.distinct_solves * epochs),
            // A non-rebalancing hedged fleet pins every view to its
            // initial reserved placement and never sees the market:
            // both routes short-circuit to a single solve.
            None => prop_assert_eq!(tree.distinct_solves, 1),
        }
    }
}
