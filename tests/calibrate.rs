//! Calibration-loop acceptance: the default throughput law reproduces
//! the paper's timing anchors, and parameters fitted from engine-metered
//! samples generalize to a held-out epoch better than the synthetic
//! spec-sheet prior they replace.

use mvcloud::engine::ThroughputModel;
use mvcloud::lattice::WorkloadEvolution;
use mvcloud::units::{Gb, Money};
use mvcloud::{ssb_domain, Advisor, AdvisorConfig, CalibrationConfig, Scenario};

/// Paper §6: Q1 over the 10 GB dataset on two small instances (2 ECU)
/// takes ≈ 0.2 h on the reference Hadoop cluster.
#[test]
fn default_throughput_reproduces_the_q1_anchor() {
    let t = ThroughputModel::default();
    let q1 = t.hours_for_scan(Gb::new(10.0), 2.0).unwrap();
    assert!(
        (q1.value() - 0.2).abs() < 0.05,
        "Q1 anchor: got {} h, want ≈ 0.2 h",
        q1.value()
    );
}

/// Paper §6: the five-query workload over the 500 GB running example
/// lands near 50 cluster-hours when every query scans the full dataset.
#[test]
fn default_throughput_reproduces_the_workload_anchor() {
    let t = ThroughputModel::default();
    let full_scan = t.hours_for_scan(Gb::new(500.0), 2.0).unwrap();
    let workload = full_scan.value() * 5.0;
    assert!(
        (45.0..55.0).contains(&workload),
        "workload anchor: got {workload} h, want ≈ 50 h"
    );
}

/// The acceptance bar for the calibration loop: parameters fitted from
/// the engine-metered epochs predict the held-out SSB epoch's metered
/// bill strictly better than the mis-specified synthetic defaults.
///
/// The 500 GB simulated scale matters: at the paper's 10 GB evaluation
/// scale, per-record compute-hour rounding collapses the fitted and
/// synthetic bills to the same invoice and the comparison is vacuous.
#[test]
fn fitted_parameters_beat_synthetic_defaults_on_held_out_ssb_epoch() {
    let advisor = Advisor::build(
        ssb_domain(2_000, 1.0, 7),
        AdvisorConfig {
            simulated_dataset: Gb::new(500.0),
            ..AdvisorConfig::default()
        },
    )
    .unwrap();
    let config = CalibrationConfig {
        epochs: 3,
        // Drifting frequencies: the held-out epoch reweights the
        // workload, so beating the prior requires the fitted *law* to
        // generalize, not just memorize one epoch's mix.
        evolution: WorkloadEvolution::drift(0.2),
        ..CalibrationConfig::default()
    };
    let report = advisor
        .calibrate(Scenario::tradeoff_normalized(0.5), &config)
        .unwrap();

    assert_eq!(report.epochs.len(), 3);
    assert_eq!(report.holdout_epoch, 2);
    assert!(report.samples > 0);
    for e in &report.epochs {
        assert!(e.measured_bill > Money::ZERO, "epoch {} unbilled", e.epoch);
        assert!(e.metered_gb > 0.0, "epoch {} metered nothing", e.epoch);
        assert!(e.fitted_rel_error.is_finite());
        assert!(e.synthetic_rel_error.is_finite());
    }
    assert!(
        report.holdout_fitted_rel_error < report.holdout_synthetic_rel_error,
        "fitted {} must beat synthetic {} on the held-out epoch",
        report.holdout_fitted_rel_error,
        report.holdout_synthetic_rel_error
    );
    assert!(
        report.holdout_fitted_rel_error < 0.05,
        "fitted held-out error {} should be small",
        report.holdout_fitted_rel_error
    );
    // The fit recovers the reference oracle's scan law.
    let fitted = report.fitted_throughput();
    let oracle = ThroughputModel::default();
    assert!(
        (fitted.scan_gb_per_hour_per_unit - oracle.scan_gb_per_hour_per_unit).abs() < 1.0,
        "fitted rate {} vs oracle {}",
        fitted.scan_gb_per_hour_per_unit,
        oracle.scan_gb_per_hour_per_unit
    );
}
