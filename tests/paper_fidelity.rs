//! Paper-fidelity checks that span crates: Section 2's pricing arithmetic
//! through the cost models, and the qualitative claims of Section 6.

use mvcloud::cost::{CloudCostModel, CostContext, QueryCharge, ViewCharge};
use mvcloud::pricing::{presets, StorageTimeline, UsageLedger};
use mvcloud::units::{Gb, Hours, Money, Months};

fn dollars(s: &str) -> Money {
    Money::from_dollars_str(s).unwrap()
}

/// Section 2.2's three worked charges, via the billing simulator (the
/// provider's side) rather than the cost models (the client's side).
#[test]
fn section2_charges_via_the_billing_simulator() {
    let aws = presets::aws_2012();
    let mut ledger = UsageLedger::new();
    ledger.record_compute("workload, no views", "small", 2, Hours::new(50.0));
    ledger.record_transfer_out("query results", Gb::new(10.0));
    ledger.record_storage(
        "dataset, one month",
        StorageTimeline::new(Gb::new(500.0), Months::new(1.0)),
    );
    let invoice = ledger.invoice(&aws).unwrap();
    assert_eq!(invoice.compute, dollars("12"));
    assert_eq!(invoice.transfer, dollars("1.08"));
    assert_eq!(invoice.storage, dollars("70"));
}

/// The running example's headline trade-off, with client-side models and
/// provider-side invoice agreeing on every figure.
#[test]
fn client_model_and_provider_invoice_agree() {
    let aws = presets::aws_2012();
    let instance = aws.compute.instance("small").unwrap().clone();
    let model = CloudCostModel::new(CostContext {
        pricing: aws.clone(),
        instance,
        nb_instances: 2,
        months: Months::new(12.0),
        dataset_size: Gb::new(500.0),
        inserts: vec![],
        workload: vec![QueryCharge::new("Q", Gb::new(10.0), Hours::new(50.0))],
    });
    let v1 = ViewCharge::new("V1", Gb::new(50.0), Hours::new(1.0), Hours::new(5.0), 1)
        .answers(0, Hours::new(40.0));
    let selected = mvcloud::cost::SelectionSet::full(1);
    let predicted = model.with_views(std::slice::from_ref(&v1), &selected);

    let mut ledger = UsageLedger::new();
    ledger.record_compute(
        "processing",
        "small",
        2,
        model.processing_time_with_views(std::slice::from_ref(&v1), &selected),
    );
    ledger.record_compute("maintenance", "small", 2, Hours::new(5.0));
    ledger.record_compute("materialization", "small", 2, Hours::new(1.0));
    ledger.record_storage("dataset + views", model.storage_timeline(Gb::new(50.0)));
    ledger.record_transfer_out("results", Gb::new(10.0));
    let invoice = ledger.invoice(&aws).unwrap();

    assert_eq!(invoice.compute, predicted.compute());
    assert_eq!(invoice.storage, predicted.storage);
    assert_eq!(invoice.transfer, predicted.transfer);
    assert_eq!(invoice.total(), predicted.total());
}

/// Example 3 under every tier interpretation: the paper's flat-by-volume
/// arithmetic and real S3's graduated brackets, both against the printed
/// (mistyped) value.
#[test]
fn example3_tier_interpretations() {
    let mut tl = StorageTimeline::new(Gb::from_tb(0.5), Months::new(12.0));
    tl.insert(Months::new(7.0), Gb::from_tb(2.0)).unwrap();

    let aws = presets::aws_2012();
    let paper_formula = aws.storage.period_cost(&tl);
    assert_eq!(paper_formula, dollars("2101.76"));

    let graduated = mvcloud::pricing::StoragePricing::new(
        aws.storage
            .monthly
            .with_mode(mvcloud::pricing::TierMode::Graduated),
    );
    let real_s3 = graduated.period_cost(&tl);
    // Graduated: 512×0.14×7 + (1024×0.14 + 1536×0.125)×5 = $2178.56.
    assert_eq!(real_s3, dollars("2178.56"));
    // Both differ from the misprinted $2131.76; the repo reproduces the
    // formula, not the typo.
    assert_ne!(paper_formula, dollars("2131.76"));
    assert_ne!(real_s3, dollars("2131.76"));
}

/// Section 6's headline: "creating materialized views in the cloud is
/// desirable" — asserted through the experiment harness at reduced scale.
#[test]
fn views_always_desirable_at_reduced_scale() {
    use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};
    for n_queries in [3usize, 5] {
        let domain = sales_domain(1_500, n_queries, 1.0, 42);
        let advisor = Advisor::build(domain, AdvisorConfig::default()).unwrap();
        let o = advisor.solve(
            Scenario::budget(advisor.problem().baseline().cost() + Money::from_dollars(5)),
            SolverKind::PaperKnapsack,
        );
        assert!(o.feasible());
        assert!(
            o.time_improvement() > 0.0,
            "{n_queries} queries saw no improvement"
        );
    }
}
