//! Semantics of the paper's three objective functions at the advisor
//! level: relaxing a constraint never worsens the objective, and the
//! α knob trades time against cost monotonically.

use mvcloud::units::{Hours, Money};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};

fn advisor() -> Advisor {
    Advisor::build(sales_domain(3_000, 5, 30.0, 42), AdvisorConfig::default()).unwrap()
}

#[test]
fn more_budget_never_slower() {
    let a = advisor();
    let base_cost = a.problem().baseline().cost();
    let mut last_time = Hours::new(f64::MAX / 2.0);
    for extra_cents in [0i64, 25, 50, 100, 400, 2_000] {
        let o = a.solve(
            Scenario::budget(base_cost + Money::from_cents(extra_cents)),
            SolverKind::Exhaustive,
        );
        assert!(
            o.evaluation.time <= last_time,
            "+{extra_cents}c: {} > previous {}",
            o.evaluation.time,
            last_time
        );
        last_time = o.evaluation.time;
    }
}

#[test]
fn looser_deadline_never_dearer() {
    let a = advisor();
    let base_time = a.problem().baseline().time;
    let mut last_cost = Money::MAX;
    for factor in [0.05, 0.2, 0.5, 0.9, 2.0] {
        let o = a.solve(
            Scenario::time_limit(Hours::new(base_time.value() * factor)),
            SolverKind::Exhaustive,
        );
        if !o.feasible() {
            continue; // a too-tight limit may be unreachable even with views
        }
        assert!(
            o.evaluation.cost() <= last_cost,
            "factor {factor}: {} > previous {}",
            o.evaluation.cost(),
            last_cost
        );
        last_cost = o.evaluation.cost();
    }
}

#[test]
fn alpha_sweeps_time_against_cost() {
    let a = advisor();
    // As alpha grows, the optimizer values time more: chosen time is
    // non-increasing and chosen cost non-decreasing.
    let outcomes: Vec<_> = [0.0, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&alpha| a.solve(Scenario::tradeoff_normalized(alpha), SolverKind::Exhaustive))
        .collect();
    for w in outcomes.windows(2) {
        assert!(
            w[1].evaluation.time <= w[0].evaluation.time,
            "time should fall as alpha rises"
        );
        assert!(
            w[1].evaluation.cost() >= w[0].evaluation.cost(),
            "cost should rise as alpha rises"
        );
    }
}

#[test]
fn alpha_zero_and_one_match_pure_objectives() {
    let a = advisor();
    // alpha = 1 minimizes time like MV1 with infinite budget.
    let pure_time = a.solve(Scenario::budget(Money::MAX), SolverKind::Exhaustive);
    let alpha_one = a.solve(Scenario::tradeoff_normalized(1.0), SolverKind::Exhaustive);
    assert_eq!(alpha_one.evaluation.time, pure_time.evaluation.time);
    // alpha = 0 minimizes cost like MV2 with infinite deadline.
    let pure_cost = a.solve(
        Scenario::time_limit(Hours::new(f64::MAX / 4.0)),
        SolverKind::Exhaustive,
    );
    let alpha_zero = a.solve(Scenario::tradeoff_normalized(0.0), SolverKind::Exhaustive);
    assert_eq!(alpha_zero.evaluation.cost(), pure_cost.evaluation.cost());
}

#[test]
fn infeasible_budget_is_reported_not_hidden() {
    let a = advisor();
    let o = a.solve(
        Scenario::budget(Money::from_cents(1)),
        SolverKind::Exhaustive,
    );
    assert!(!o.feasible());
    // The report still carries the least-violating evaluation.
    assert!(o.evaluation.cost() > Money::from_cents(1));
}
