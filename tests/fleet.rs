//! Degenerate-fleet conformance: the mixed-fleet solver must collapse
//! to the existing single-fleet solvers exactly.
//!
//! Three pins, mirroring PR 4's zero-volatility guarantee:
//!
//! * an **all-spot** [`FleetPlan`] at market parity reproduces
//!   `Advisor::solve_market` **bit-for-bit per path** — same models
//!   (the primary sheet rides the quotes), same risk-adjusted charges
//!   (the spot pool's `PoolCharge` is the bare `InterruptionRisk`),
//!   same move enumeration (placement pinned ⇒ the joint improvement
//!   pass is the plain one);
//! * an **all-reserved** plan at on-demand parity never sees the
//!   market at all and reproduces the risk-free `solve_horizon`
//!   bit-for-bit on every path;
//! * a **zero-persistence** [`CorrelatedHazard`] is the independent
//!   i.i.d. hazard exactly — one uniform per epoch against the
//!   stationary crunch share, reconstructed by hand from the same
//!   seeded generator.
//!
//! Plus the fix-en-route equality: the single-fleet
//! `SpotCommitmentReport` is the pure-fleet special case of the fleet
//! comparison — both go through
//! `SpotCommitmentReport::from_path_bills`, and this test pins that
//! they can never disagree.

use std::sync::OnceLock;

use mvcloud::fleet::FleetConfig;
use mvcloud::market::{CorrelatedHazard, MarketConfig, MarketScenario, PriceProcess, SpotMarket};
use mvcloud::pricing::{FleetPlan, Placement};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, HorizonConfig, Scenario};
use proptest::prelude::*;

/// One measured advisor shared by every proptest case.
fn advisor() -> &'static Advisor {
    static ADVISOR: OnceLock<Advisor> = OnceLock::new();
    ADVISOR.get_or_init(|| {
        Advisor::build(sales_domain(1_000, 4, 5.0, 42), AdvisorConfig::default()).unwrap()
    })
}

/// A genuinely moving market: discounted volatile spot plus a bursty
/// correlated crunch regime.
fn moving_market(epochs: usize, seed: u64) -> MarketScenario {
    MarketScenario::constant(epochs, seed)
        .with(PriceProcess::Spot(SpotMarket::discounted(0.5, 0.35)))
        .with(PriceProcess::Correlated(
            CorrelatedHazard::bursty(0.3, 0.7, 0.5).with_crunch_compute(1.3),
        ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pure-spot fleet ≡ `solve_market`, bit for bit, path by path.
    #[test]
    fn pure_spot_fleet_reproduces_solve_market_bit_for_bit(
        epochs in 1usize..5,
        paths in 1usize..6,
        seed in 0u64..1_000,
        knob in 0.0f64..1.0,
    ) {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(knob);
        let market = moving_market(epochs, seed);
        let single = a
            .solve_market(
                scenario,
                &MarketConfig {
                    market: market.clone(),
                    paths,
                    ..MarketConfig::default()
                },
            )
            .unwrap();
        let fleet = a
            .solve_fleet(
                scenario,
                &FleetConfig {
                    market,
                    paths,
                    fleet: FleetPlan::pure_spot(),
                    compare_pure: false,
                    ..FleetConfig::default()
                },
            )
            .unwrap();

        prop_assert_eq!(fleet.paths.len(), single.paths.len());
        for (f, m) in fleet.paths.iter().zip(&single.paths) {
            prop_assert_eq!(f.path, m.path);
            prop_assert_eq!(f.total_cost, m.total_cost, "path {}", f.path);
            prop_assert_eq!(f.total_time, m.total_time, "path {}", f.path);
            prop_assert_eq!(
                f.billed_instance_hours,
                m.billed_instance_hours,
                "path {}",
                f.path
            );
            prop_assert_eq!(f.compute_bill, m.compute_bill, "path {}", f.path);
            prop_assert_eq!(f.switches, m.switches, "path {}", f.path);
            prop_assert_eq!(f.moves, 0, "path {}", f.path);
            prop_assert_eq!(f.interruptions, m.interruptions, "path {}", f.path);
            prop_assert_eq!(&f.epoch_costs, &m.epoch_costs, "path {}", f.path);
            prop_assert_eq!(&f.selections, &m.selections, "path {}", f.path);
            // Every selected view really is spot-placed.
            for (e, sel) in f.selections.iter().enumerate() {
                for k in sel.ones() {
                    prop_assert_eq!(f.placements[e][k], Placement::Spot);
                }
            }
        }
        for (fe, me) in fleet.epochs.iter().zip(&single.epochs) {
            prop_assert_eq!(fe.charged_cost, me.charged_cost, "epoch {}", fe.epoch);
            prop_assert_eq!(fe.interruption, me.interruption, "epoch {}", fe.epoch);
            prop_assert_eq!(fe.compute_factor, me.compute_factor, "epoch {}", fe.epoch);
            prop_assert_eq!(fe.distinct_plans, me.distinct_plans, "epoch {}", fe.epoch);
        }
        prop_assert_eq!(fleet.total_cost, single.total_cost);
        prop_assert_eq!(fleet.plan_stability, single.plan_stability);
        prop_assert_eq!(fleet.hedge_ratio.max, 1.0);
    }

    /// Pure-reserved fleet ≡ the risk-free `solve_horizon` on every
    /// sampled path: market dynamics never reach reserved capacity.
    #[test]
    fn pure_reserved_fleet_reproduces_solve_horizon_bit_for_bit(
        epochs in 1usize..5,
        paths in 1usize..6,
        seed in 0u64..1_000,
        knob in 0.0f64..1.0,
    ) {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(knob);
        let horizon = a
            .solve_horizon(
                scenario,
                &HorizonConfig { epochs, ..HorizonConfig::default() },
            )
            .unwrap();
        let fleet = a
            .solve_fleet(
                scenario,
                &FleetConfig {
                    market: moving_market(epochs, seed),
                    paths,
                    fleet: FleetPlan::pure_reserved(),
                    compare_pure: false,
                    ..FleetConfig::default()
                },
            )
            .unwrap();
        prop_assert_eq!(fleet.paths.len(), paths);
        for p in &fleet.paths {
            prop_assert_eq!(p.total_cost, horizon.total_cost, "path {}", p.path);
            prop_assert_eq!(p.total_time, horizon.total_time, "path {}", p.path);
            prop_assert_eq!(
                p.billed_instance_hours,
                horizon.billed_instance_hours,
                "path {}",
                p.path
            );
            prop_assert_eq!(p.spot_hours, mvcloud::units::Hours::ZERO);
            prop_assert_eq!(p.spot_share, 0.0);
            for (e, step) in horizon.steps.iter().enumerate() {
                prop_assert_eq!(
                    p.epoch_costs[e],
                    step.outcome.evaluation.cost(),
                    "path {} epoch {}",
                    p.path,
                    e
                );
                prop_assert_eq!(&p.selections[e], step.selection(), "path {} epoch {}", p.path, e);
            }
        }
        // Reserved capacity is insulated: the envelope collapses even
        // though the market is stochastic.
        for e in &fleet.epochs {
            prop_assert_eq!(e.charged_cost.spread(), 0.0, "epoch {}", e.epoch);
            prop_assert_eq!(e.hedge_ratio.max, 0.0, "epoch {}", e.epoch);
        }
        prop_assert_eq!(fleet.plan_stability, 1.0);
    }

    /// Zero-persistence correlated hazard ≡ the independent hazard:
    /// reconstruct the i.i.d. Bernoulli draws by hand from the same
    /// seeded generator and match the scenario's quotes bit-for-bit.
    #[test]
    fn zero_persistence_hazard_reproduces_the_independent_path(
        epochs in 1usize..12,
        seed in 0u64..10_000,
        path in 0usize..8,
        share in 0.05f64..0.95,
        crunch in 0.05f64..0.9,
    ) {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        let market = MarketScenario::constant(epochs, seed)
            .with(PriceProcess::Correlated(CorrelatedHazard::bursty(share, 0.0, crunch)));
        let sampled = market.path(path);

        // The scenario derives path generators by splitmix-ing the path
        // index into the master seed; reproduce that, then draw one
        // uniform per epoch against the stationary share — the
        // independent-hazard construction.
        let mixed = seed.wrapping_add((path as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = StdRng::seed_from_u64(mixed);
        for (e, q) in sampled.quotes.iter().enumerate() {
            let is_crunch = rng.random_range(0.0f64..1.0) < share;
            // The scenario combines hazards as survival probabilities
            // (`1 − Π(1 − pᵢ)`), so a single process's quote makes the
            // same float roundtrip.
            let expected = if is_crunch { 1.0 - (1.0 - crunch) } else { 0.0 };
            prop_assert_eq!(q.interruption, expected, "epoch {}", e);
            prop_assert!(q.factors.is_unit(), "epoch {}", e);
        }
    }
}

/// Fix-en-route equality: the single-fleet `SpotCommitmentReport` and
/// the pure-spot fleet's commitment leg price through the same
/// constructor and must agree field-for-field.
#[test]
fn commitment_report_is_the_pure_fleet_special_case() {
    let a = advisor();
    let scenario = Scenario::tradeoff_normalized(0.5);
    let market =
        MarketScenario::constant(8, 77).with(PriceProcess::Spot(SpotMarket::discounted(0.45, 0.3)));
    let plan = mvcloud::pricing::CommitmentPlan::aws_small_1yr();
    let single = a
        .solve_market(
            scenario,
            &MarketConfig {
                market: market.clone(),
                paths: 8,
                commitment: Some(plan.clone()),
                ..MarketConfig::default()
            },
        )
        .unwrap();
    let mut fleet_plan = FleetPlan::pure_spot();
    fleet_plan.reserved.commitment = Some(plan);
    let fleet = a
        .solve_fleet(
            scenario,
            &FleetConfig {
                market,
                paths: 8,
                fleet: fleet_plan,
                compare_pure: false,
                ..FleetConfig::default()
            },
        )
        .unwrap();
    let s = single.commitment.expect("plan supplied");
    let f = fleet.commitment.expect("plan supplied");
    assert_eq!(s.plan, f.plan);
    assert_eq!(s.spot_compute, f.spot_compute);
    assert_eq!(s.reserved, f.reserved);
    assert_eq!(s.saving, f.saving);
    assert_eq!(s.reserved_wins_share, f.reserved_wins_share);
}
