//! Root integration package for the workspace.
//!
//! The implementation lives in the `crates/` members; this package hosts
//! the runnable `examples/` and the cross-crate integration tests in
//! `tests/`. It re-exports the [`mvcloud`] facade so examples can write
//! `use cloud_view_suite::...` or `use mvcloud::...` interchangeably.

pub use mvcloud::*;
